"""Hash-partitioned retrieval backend: N child indexes behind one facade.

:class:`ShardedIndex` registers as the ``"sharded"``
:mod:`~repro.retrieval.backend` and composes any registered backend as its
shard type.  Rows are partitioned by stable id (``id % n_shards``) so
``add``/``remove`` route deterministically, ``search``/``radius_search``
fan out across every shard, and per-shard top-k results merge with
``(distance, id)`` tie-breaking — bit-identical to the same rows held in a
single index, which is what lets the serving layer
(:mod:`repro.serving`) scale the database out without changing a single
result.

Each child backend numbers its rows locally in its own insertion order; the
facade keeps one append-only ``local -> global`` id array per shard (global
ids are assigned monotonically, so each array stays sorted and the reverse
``global -> local`` lookup is a binary search).  Children never renumber on
``remove``, so the arrays are valid for the lifetime of the index.

**Graceful degradation** (PR 7): every shard sits behind a
:class:`~repro.utils.retry.CircuitBreaker`.  A shard that raises during
fan-out records a breaker failure and drops out of the merge — the query
still answers from the surviving shards, flagged via
:attr:`ShardedIndex.last_query_degraded` (missing tail positions pad with
id ``-1`` / distance ``n_bits + 1``).  After ``breaker_threshold``
consecutive failures the circuit opens and the shard is skipped without
paying its failure latency until ``breaker_reset_s`` passes, when one
half-open probe is let through; a probe success closes the circuit and
:attr:`ShardedIndex.degraded` clears.  Only when *no* shard can answer
does the query raise :class:`~repro.errors.ShardUnavailableError`.
Degraded results never enter the facade's query cache.  Each shard call
first consults the index's :class:`~repro.utils.faults.FaultInjector` at
the ``shard.search`` point (with ``shard=<i>`` context), which is how the
fault-scale bench kills one shard deterministically.

**Concurrent fan-out** (PR 8): with ``workers > 1`` the surviving shard
probes of a fan-out run on a shared :class:`~repro.utils.parallel.WorkerPool`
instead of the serial Python loop.  The fan-out is two-phase so parallel
answers stay bit-identical to serial ones: phase 1 walks the shards *in
shard order* on the calling thread — breaker admission and the fault
injector consult happen exactly as they would serially, so deterministic
fault schedules and breaker transitions are untouched — and phase 2
dispatches only the admitted probes to the pool, collecting results and
applying breaker bookkeeping back in shard order.  Each probe touches
only its own shard object, per-shard result blocks are concatenated in
shard order, and the ``(distance, id)`` composite-key merge is a stable
sort — so completion order cannot reorder anything.
"""

from __future__ import annotations

import time
from collections.abc import Callable

import numpy as np

from repro.errors import (
    ConfigurationError,
    NotFittedError,
    ShapeError,
    ShardUnavailableError,
)
from repro.retrieval.backend import (
    QueryResultCache,
    RetrievalBackend,
    cached_radius,
    cached_topk,
    make_backend,
    register_backend,
)
from repro.utils.faults import NULL_INJECTOR, FaultInjector
from repro.utils.parallel import WorkerPool, require_thread_backend
from repro.utils.retry import CLOSED, CircuitBreaker
from repro.utils.validation import check_binary_codes

_EMPTY_IDS = np.empty(0, dtype=np.int64)

#: Sentinel id padding partial (degraded) top-k rows past the last real hit.
MISSING_ID = -1


@register_backend("sharded")
class ShardedIndex:
    """Hash-partitioned Hamming index over ``n_shards`` child backends.

    Parameters
    ----------
    n_bits:
        Code length ``k``.
    n_shards:
        Number of partitions; rows route to shard ``id % n_shards``.
    shard_backend:
        Registered backend name used for every shard (``"bruteforce"``,
        ``"multi-index"``, ... — anything except ``"sharded"`` itself).
    cache_size:
        If positive, keep an LRU :class:`QueryResultCache` of merged
        per-query results at the facade level, cleared on every mutation.
    shard_options:
        Extra keyword arguments forwarded to every shard's constructor
        (e.g. ``{"n_tables": 4}`` for multi-index shards).
    breaker_threshold / breaker_reset_s / clock:
        Per-shard :class:`~repro.utils.retry.CircuitBreaker` tuning:
        consecutive failures before a shard's circuit opens, seconds until
        the half-open probe, and the (injectable) monotonic clock.
    faults:
        :class:`~repro.utils.faults.FaultInjector` consulted at the
        ``shard.search`` point before every shard call.
    workers:
        Worker count for the concurrent shard fan-out (``None`` reads
        ``$REPRO_WORKERS``; ``1`` keeps the serial probe loop).  Pure
        execution policy — merged results are bit-identical at any value.
    pool_backend:
        Must be ``"thread"`` or ``None``: the fan-out submits closures
        over live shard/breaker state and is latency-bound, so it cannot
        run in child processes.  An explicit ``"process"`` raises
        :class:`~repro.errors.ConfigurationError` rather than silently
        degrading (``None`` never consults ``$REPRO_POOL`` here — an
        environment-wide process default reaches only the Q-build
        kernels).
    """

    def __init__(
        self,
        n_bits: int,
        n_shards: int = 4,
        shard_backend: str = "bruteforce",
        cache_size: int = 0,
        shard_options: dict | None = None,
        breaker_threshold: int = 3,
        breaker_reset_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        faults: FaultInjector = NULL_INJECTOR,
        workers: int | None = None,
        pool_backend: str | None = None,
    ) -> None:
        if n_bits <= 0:
            raise ShapeError(f"n_bits must be positive: {n_bits}")
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive: {n_shards}")
        if shard_backend == "sharded":
            raise ConfigurationError("sharded shards cannot nest")
        self.n_bits = n_bits
        self.n_shards = n_shards
        self.shard_backend = shard_backend
        self.shard_options = dict(shard_options or {})
        self.faults = faults
        self._init_shard_state(breaker_threshold, breaker_reset_s, clock)
        #: Whether the most recent fan-out answered from a shard subset.
        self.last_query_degraded = False
        self._next_id = 0
        self._n_alive = 0
        self._cache = QueryResultCache(cache_size) if cache_size else None
        self._pool = WorkerPool(
            workers, name="shard",
            backend=require_thread_backend(pool_backend, "ShardedIndex fan-out"),
        )

    def _init_shard_state(
        self,
        breaker_threshold: int,
        breaker_reset_s: float,
        clock: Callable[[], float],
    ) -> None:
        """Build all per-shard state in one pass — the single seam both the
        serial and the pooled fan-out initialize through.

        Per shard: the child backend, its circuit breaker, and the
        append-only ``local -> global`` id array (global ids are assigned
        monotonically, so each array stays sorted ascending by
        construction).
        """
        self._shards: list[RetrievalBackend] = []
        self._breakers: list[CircuitBreaker] = []
        self._shard_gids: list[np.ndarray] = []
        for _ in range(self.n_shards):
            self._shards.append(
                make_backend(self.shard_backend, self.n_bits,
                             **self.shard_options)
            )
            self._breakers.append(
                CircuitBreaker(failure_threshold=breaker_threshold,
                               reset_timeout_s=breaker_reset_s, clock=clock)
            )
            self._shard_gids.append(_EMPTY_IDS.copy())

    # -- mutation ---------------------------------------------------------------

    def add(self, codes: np.ndarray) -> "ShardedIndex":
        """Append ±1 codes; new rows get the next insertion-order ids."""
        codes = self._check_codes(codes)
        gids = np.arange(self._next_id, self._next_id + codes.shape[0],
                         dtype=np.int64)
        shard_of = gids % self.n_shards
        for si in range(self.n_shards):
            mask = shard_of == si
            if not mask.any():
                continue
            self._shards[si].add(codes[mask])
            self._shard_gids[si] = np.concatenate(
                [self._shard_gids[si], gids[mask]]
            )
        self._next_id += codes.shape[0]
        self._n_alive += codes.shape[0]
        if self._cache is not None:
            self._cache.clear()
        return self

    def remove(self, ids: np.ndarray) -> int:
        """Remove rows by stable global id (unknown ids are ignored)."""
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        ids = np.unique(ids[(ids >= 0) & (ids < self._next_id)])
        removed = 0
        for si in range(self.n_shards):
            sel = ids[ids % self.n_shards == si]
            if sel.size == 0:
                continue
            local = np.searchsorted(self._shard_gids[si], sel)
            # Every in-range id routed here was added here, so the lookup
            # always lands; the child ignores already-removed locals.
            removed += self._shards[si].remove(local)
        self._n_alive -= removed
        if removed and self._cache is not None:
            self._cache.clear()
        return removed

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        return self._n_alive

    @property
    def cache(self) -> QueryResultCache | None:
        """The merged-result cache, or ``None`` when caching is off."""
        return self._cache

    @property
    def shard_sizes(self) -> tuple[int, ...]:
        """Alive row count per shard."""
        return tuple(len(shard) for shard in self._shards)

    @property
    def shards(self) -> tuple[RetrievalBackend, ...]:
        """The child backends (read-only view; do not mutate directly)."""
        return tuple(self._shards)

    @property
    def breakers(self) -> tuple[CircuitBreaker, ...]:
        """The per-shard circuit breakers (read-only view)."""
        return tuple(self._breakers)

    @property
    def degraded(self) -> bool:
        """Whether any shard's circuit is currently not closed."""
        return any(b.state != CLOSED for b in self._breakers)

    @property
    def workers(self) -> int:
        """Effective worker count of the fan-out pool (1 = serial)."""
        return self._pool.workers

    def pool_stats(self) -> dict:
        """The fan-out pool's worker count, mode, and task counters."""
        return self._pool.stats()

    def close(self) -> None:
        """Join the fan-out pool's workers (idempotent).

        Part of graceful service shutdown: after closing, the pool refuses
        new probes, its submitted/completed counters are balanced, and no
        worker thread outlives the index.  Searches after ``close`` raise
        :class:`~repro.errors.ConfigurationError` from the pool.
        """
        self._pool.close()

    def circuit_states(self) -> list[dict]:
        """Per-shard breaker state/counters for ``health()`` reports."""
        return [
            {"shard": si, **breaker.stats()}
            for si, breaker in enumerate(self._breakers)
        ]

    # -- validation -------------------------------------------------------------

    def _check_codes(self, codes: np.ndarray, name: str = "codes") -> np.ndarray:
        codes = check_binary_codes(codes, name)
        if codes.shape[1] != self.n_bits:
            raise ShapeError(
                f"expected {self.n_bits}-bit {name}, got {codes.shape[1]}"
            )
        return codes

    def _require_built(self) -> None:
        if self._n_alive == 0:
            raise NotFittedError("index is empty; call add() first")

    # -- queries ----------------------------------------------------------------

    def _probe_shards(
        self, ops: list[tuple[int, Callable[[], object]]]
    ) -> tuple[list[tuple[int, object]], bool]:
        """Run shard operations under their breakers, two-phase.

        Phase 1 (serial, in shard order — exactly the serial loop's
        sequence): consult each shard's breaker, then the fault injector at
        ``shard.search``.  A refused or faulted shard records its breaker
        failure immediately and degrades the query; survivors are admitted.
        Phase 2: admitted probes dispatch to the pool (inline when the
        pool is serial); results are collected and breaker bookkeeping is
        applied back in shard order, so success/failure transitions land
        in the same sequence as the serial loop.

        Returns ``(results, degraded)`` where ``results`` is the
        shard-ordered list of ``(shard index, result)`` for every probe
        that answered.
        """
        admitted: list[tuple[int, object]] = []
        degraded = False
        for si, op in ops:
            breaker = self._breakers[si]
            if not breaker.allow():
                degraded = True
                continue
            try:
                self.faults.check("shard.search", shard=si)
            except Exception:
                breaker.record_failure()
                degraded = True
                continue
            admitted.append((si, self._pool.submit(op)))
        results: list[tuple[int, object]] = []
        for si, future in admitted:
            try:
                result = future.result()
            except Exception:
                self._breakers[si].record_failure()
                degraded = True
                continue
            self._breakers[si].record_success()
            results.append((si, result))
        return results, degraded

    def _fan_out_topk(
        self, query_codes: np.ndarray, top_k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Search every non-empty shard and merge by (distance, global id).

        A failing or circuit-open shard drops out of the merge: the query
        degrades to the surviving shards (``last_query_degraded=True``,
        missing tail positions padded with ``MISSING_ID`` / ``n_bits + 1``)
        instead of failing, unless *every* shard is unavailable.
        """
        ops = [
            (si, lambda s=shard, k=min(top_k, len(shard)):
                s.search(query_codes, top_k=k))
            for si, shard in enumerate(self._shards)
            if len(shard) > 0
        ]
        results, degraded = self._probe_shards(ops)
        gid_blocks = []
        dist_blocks = []
        for si, result in results:
            local_ids, dist = result
            gid_blocks.append(self._shard_gids[si][local_ids])
            dist_blocks.append(dist)
        if not gid_blocks:
            self.last_query_degraded = True
            raise ShardUnavailableError(
                f"all {self.n_shards} shards are unavailable; "
                f"no shard could answer this query"
            )
        self.last_query_degraded = degraded
        all_gids = np.concatenate(gid_blocks, axis=1)
        all_dist = np.concatenate(dist_blocks, axis=1)
        # One composite int key per candidate gives a row-wise lexsort by
        # (distance, id): distances are integers in [0, n_bits] and ids are
        # below _next_id, so the product never collides or overflows.
        composite = (all_dist.astype(np.int64) * np.int64(self._next_id)
                     + all_gids)
        order = np.argsort(composite, axis=1, kind="stable")[:, :top_k]
        merged_gids = np.take_along_axis(all_gids, order, axis=1)
        merged_dist = np.take_along_axis(all_dist, order, axis=1)
        if merged_gids.shape[1] < top_k:
            # Degraded answer with fewer survivors than top_k: pad the tail
            # so the result shape stays (n, top_k) for every caller.
            pad = top_k - merged_gids.shape[1]
            merged_gids = np.pad(merged_gids, ((0, 0), (0, pad)),
                                 constant_values=MISSING_ID)
            merged_dist = np.pad(merged_dist, ((0, 0), (0, pad)),
                                 constant_values=self.n_bits + 1)
        return merged_gids, merged_dist

    def search(
        self, query_codes: np.ndarray, top_k: int = 10
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact merged top-k: (global ids, distances), ties by id."""
        self._require_built()
        if not 1 <= top_k <= self._n_alive:
            raise ShapeError(
                f"top_k must be in [1, {self._n_alive}], got {top_k}"
            )
        query_codes = self._check_codes(query_codes, "query_codes")
        self.last_query_degraded = False
        if self._cache is None or self.degraded:
            # While any circuit is open the cache is bypassed entirely so
            # partial answers are never stored or served as full ones.
            return self._fan_out_topk(query_codes, top_k)
        out = cached_topk(
            self._cache, np.packbits(query_codes > 0, axis=1), top_k,
            lambda misses: self._fan_out_topk(query_codes[misses], top_k),
        )
        if self.last_query_degraded:
            self._cache.clear()  # a shard failed mid-fill; drop partials
        return out

    def _fan_out_radius(
        self, query_codes: np.ndarray, radius: int
    ) -> list[np.ndarray]:
        per_query: list[list[np.ndarray]] = [
            [] for _ in range(query_codes.shape[0])
        ]
        ops = [
            (si, lambda s=shard: s.radius_search(query_codes, radius))
            for si, shard in enumerate(self._shards)
            if len(shard) > 0
        ]
        results, degraded = self._probe_shards(ops)
        answered = False
        for si, hits in results:
            answered = True
            for qi, local_hits in enumerate(hits):
                per_query[qi].append(self._shard_gids[si][local_hits])
        if not answered and degraded:
            self.last_query_degraded = True
            raise ShardUnavailableError(
                f"all {self.n_shards} shards are unavailable; "
                f"no shard could answer this query"
            )
        self.last_query_degraded = degraded
        return [
            np.sort(np.concatenate(blocks)) if blocks else _EMPTY_IDS.copy()
            for blocks in per_query
        ]

    def radius_search(
        self, query_codes: np.ndarray, radius: int
    ) -> list[np.ndarray]:
        """All alive global ids within ``radius`` per query, sorted."""
        self._require_built()
        if not 0 <= radius <= self.n_bits:
            raise ShapeError(
                f"radius must be in [0, {self.n_bits}], got {radius}"
            )
        query_codes = self._check_codes(query_codes, "query_codes")
        self.last_query_degraded = False
        if self._cache is None or self.degraded:
            return self._fan_out_radius(query_codes, radius)
        out = cached_radius(
            self._cache, np.packbits(query_codes > 0, axis=1), radius,
            lambda misses: self._fan_out_radius(query_codes[misses], radius),
        )
        if self.last_query_degraded:
            self._cache.clear()
        return out
