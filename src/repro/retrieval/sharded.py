"""Hash-partitioned retrieval backend: N child indexes behind one facade.

:class:`ShardedIndex` registers as the ``"sharded"``
:mod:`~repro.retrieval.backend` and composes any registered backend as its
shard type.  Rows are partitioned by stable id (``id % n_shards``) so
``add``/``remove`` route deterministically, ``search``/``radius_search``
fan out across every shard, and per-shard top-k results merge with
``(distance, id)`` tie-breaking — bit-identical to the same rows held in a
single index, which is what lets the serving layer
(:mod:`repro.serving`) scale the database out without changing a single
result.

Each child backend numbers its rows locally in its own insertion order; the
facade keeps one append-only ``local -> global`` id array per shard (global
ids are assigned monotonically, so each array stays sorted and the reverse
``global -> local`` lookup is a binary search).  Children never renumber on
``remove``, so the arrays are valid for the lifetime of the index.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError, ShapeError
from repro.retrieval.backend import (
    QueryResultCache,
    RetrievalBackend,
    cached_radius,
    cached_topk,
    make_backend,
    register_backend,
)
from repro.utils.validation import check_binary_codes

_EMPTY_IDS = np.empty(0, dtype=np.int64)


@register_backend("sharded")
class ShardedIndex:
    """Hash-partitioned Hamming index over ``n_shards`` child backends.

    Parameters
    ----------
    n_bits:
        Code length ``k``.
    n_shards:
        Number of partitions; rows route to shard ``id % n_shards``.
    shard_backend:
        Registered backend name used for every shard (``"bruteforce"``,
        ``"multi-index"``, ... — anything except ``"sharded"`` itself).
    cache_size:
        If positive, keep an LRU :class:`QueryResultCache` of merged
        per-query results at the facade level, cleared on every mutation.
    shard_options:
        Extra keyword arguments forwarded to every shard's constructor
        (e.g. ``{"n_tables": 4}`` for multi-index shards).
    """

    def __init__(
        self,
        n_bits: int,
        n_shards: int = 4,
        shard_backend: str = "bruteforce",
        cache_size: int = 0,
        shard_options: dict | None = None,
    ) -> None:
        if n_bits <= 0:
            raise ShapeError(f"n_bits must be positive: {n_bits}")
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive: {n_shards}")
        if shard_backend == "sharded":
            raise ConfigurationError("sharded shards cannot nest")
        self.n_bits = n_bits
        self.n_shards = n_shards
        self.shard_backend = shard_backend
        self.shard_options = dict(shard_options or {})
        self._shards: list[RetrievalBackend] = [
            make_backend(shard_backend, n_bits, **self.shard_options)
            for _ in range(n_shards)
        ]
        #: Per shard: global id of every row ever added, in the child's
        #: insertion (= local id) order.  Sorted ascending by construction.
        self._shard_gids: list[np.ndarray] = [
            _EMPTY_IDS.copy() for _ in range(n_shards)
        ]
        self._next_id = 0
        self._n_alive = 0
        self._cache = QueryResultCache(cache_size) if cache_size else None

    # -- mutation ---------------------------------------------------------------

    def add(self, codes: np.ndarray) -> "ShardedIndex":
        """Append ±1 codes; new rows get the next insertion-order ids."""
        codes = self._check_codes(codes)
        gids = np.arange(self._next_id, self._next_id + codes.shape[0],
                         dtype=np.int64)
        shard_of = gids % self.n_shards
        for si in range(self.n_shards):
            mask = shard_of == si
            if not mask.any():
                continue
            self._shards[si].add(codes[mask])
            self._shard_gids[si] = np.concatenate(
                [self._shard_gids[si], gids[mask]]
            )
        self._next_id += codes.shape[0]
        self._n_alive += codes.shape[0]
        if self._cache is not None:
            self._cache.clear()
        return self

    def remove(self, ids: np.ndarray) -> int:
        """Remove rows by stable global id (unknown ids are ignored)."""
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        ids = np.unique(ids[(ids >= 0) & (ids < self._next_id)])
        removed = 0
        for si in range(self.n_shards):
            sel = ids[ids % self.n_shards == si]
            if sel.size == 0:
                continue
            local = np.searchsorted(self._shard_gids[si], sel)
            # Every in-range id routed here was added here, so the lookup
            # always lands; the child ignores already-removed locals.
            removed += self._shards[si].remove(local)
        self._n_alive -= removed
        if removed and self._cache is not None:
            self._cache.clear()
        return removed

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        return self._n_alive

    @property
    def cache(self) -> QueryResultCache | None:
        """The merged-result cache, or ``None`` when caching is off."""
        return self._cache

    @property
    def shard_sizes(self) -> tuple[int, ...]:
        """Alive row count per shard."""
        return tuple(len(shard) for shard in self._shards)

    @property
    def shards(self) -> tuple[RetrievalBackend, ...]:
        """The child backends (read-only view; do not mutate directly)."""
        return tuple(self._shards)

    # -- validation -------------------------------------------------------------

    def _check_codes(self, codes: np.ndarray, name: str = "codes") -> np.ndarray:
        codes = check_binary_codes(codes, name)
        if codes.shape[1] != self.n_bits:
            raise ShapeError(
                f"expected {self.n_bits}-bit {name}, got {codes.shape[1]}"
            )
        return codes

    def _require_built(self) -> None:
        if self._n_alive == 0:
            raise NotFittedError("index is empty; call add() first")

    # -- queries ----------------------------------------------------------------

    def _fan_out_topk(
        self, query_codes: np.ndarray, top_k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Search every non-empty shard and merge by (distance, global id)."""
        gid_blocks = []
        dist_blocks = []
        for si, shard in enumerate(self._shards):
            n_rows = len(shard)
            if n_rows == 0:
                continue
            local_ids, dist = shard.search(query_codes,
                                           top_k=min(top_k, n_rows))
            gid_blocks.append(self._shard_gids[si][local_ids])
            dist_blocks.append(dist)
        all_gids = np.concatenate(gid_blocks, axis=1)
        all_dist = np.concatenate(dist_blocks, axis=1)
        # One composite int key per candidate gives a row-wise lexsort by
        # (distance, id): distances are integers in [0, n_bits] and ids are
        # below _next_id, so the product never collides or overflows.
        composite = (all_dist.astype(np.int64) * np.int64(self._next_id)
                     + all_gids)
        order = np.argsort(composite, axis=1, kind="stable")[:, :top_k]
        return (
            np.take_along_axis(all_gids, order, axis=1),
            np.take_along_axis(all_dist, order, axis=1),
        )

    def search(
        self, query_codes: np.ndarray, top_k: int = 10
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact merged top-k: (global ids, distances), ties by id."""
        self._require_built()
        if not 1 <= top_k <= self._n_alive:
            raise ShapeError(
                f"top_k must be in [1, {self._n_alive}], got {top_k}"
            )
        query_codes = self._check_codes(query_codes, "query_codes")
        if self._cache is None:
            return self._fan_out_topk(query_codes, top_k)
        return cached_topk(
            self._cache, np.packbits(query_codes > 0, axis=1), top_k,
            lambda misses: self._fan_out_topk(query_codes[misses], top_k),
        )

    def _fan_out_radius(
        self, query_codes: np.ndarray, radius: int
    ) -> list[np.ndarray]:
        per_query: list[list[np.ndarray]] = [
            [] for _ in range(query_codes.shape[0])
        ]
        for si, shard in enumerate(self._shards):
            if len(shard) == 0:
                continue
            for qi, local_hits in enumerate(
                shard.radius_search(query_codes, radius)
            ):
                per_query[qi].append(self._shard_gids[si][local_hits])
        return [
            np.sort(np.concatenate(blocks)) if blocks else _EMPTY_IDS.copy()
            for blocks in per_query
        ]

    def radius_search(
        self, query_codes: np.ndarray, radius: int
    ) -> list[np.ndarray]:
        """All alive global ids within ``radius`` per query, sorted."""
        self._require_built()
        if not 0 <= radius <= self.n_bits:
            raise ShapeError(
                f"radius must be in [0, {self.n_bits}], got {radius}"
            )
        query_codes = self._check_codes(query_codes, "query_codes")
        if self._cache is None:
            return self._fan_out_radius(query_codes, radius)
        return cached_radius(
            self._cache, np.packbits(query_codes > 0, axis=1), radius,
            lambda misses: self._fan_out_radius(query_codes[misses], radius),
        )
