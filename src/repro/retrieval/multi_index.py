"""Multi-Index Hashing for sublinear Hamming-radius search.

Implements the classic MIH decomposition (Norouzi, Punjani & Fleet, CVPR
2012): split each k-bit code into ``m`` disjoint substrings and bucket the
database by each substring.  By the pigeonhole principle, any code within
Hamming radius ``r`` of a query must match the query within ``floor(r/m)``
in at least one substring — so radius search only probes a small
neighbourhood of buckets per table instead of scanning the corpus.

This is the serving-side structure the paper's hash-lookup protocol
(Figure 3) implies at production scale; it registers as the
``"multi-index"`` :mod:`~repro.retrieval.backend`.  The brute-force
:class:`~repro.retrieval.engine.HammingIndex` remains the reference
implementation and the two are tested to agree exactly.

Serving hot paths are vectorized end to end:

- **build** packs whole substring columns into integer bucket keys at once
  (:func:`_bulk_keys`, no per-row Python loop);
- **buckets** are CSR-shaped — an offsets array plus one flat members
  array per table (direct-addressed for substrings up to
  ``_DIRECT_WIDTH`` bits, binary-searched over sorted unique keys beyond
  that) — so one probe resolves thousands of candidate keys with array
  gathers instead of per-key dict lookups;
- **probing** grows the radius incrementally: each expansion step XORs the
  query key against a cached mask ring (exactly ``t`` flipped bits) and
  only the new ring is probed;
- **verification** runs on bit-packed codes with LUT popcounts — no float
  BLAS, and no re-validation: codes are validated exactly once, when they
  enter the index.

``add()`` appends with stable insertion-order ids; ``remove(ids)``
tombstones rows and the CSR probe structures are lazily rebuilt over alive
rows only (call :meth:`MultiIndexHammingIndex.vacuum` to force the rebuild
eagerly after heavy churn).
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations
from math import comb

import numpy as np

from repro.errors import NotFittedError, ShapeError
from repro.retrieval.backend import QueryResultCache, register_backend
from repro.retrieval.hamming import _POPCOUNT, packed_distances_to_one
from repro.utils.validation import check_binary_codes

_EMPTY_IDS = np.empty(0, dtype=np.int64)


def _popcount_keys(x: np.ndarray) -> np.ndarray:
    """Popcount of each non-negative integer key (object dtype supported)."""
    if x.dtype == object:
        return np.array([bin(int(v)).count("1") for v in x], dtype=np.int64)
    b = np.ascontiguousarray(x.astype(np.int64)).view(np.uint8).reshape(-1, 8)
    return _POPCOUNT[b].sum(axis=1, dtype=np.int64)

#: Widest substring that gets a direct-addressed offsets array (2^w + 1
#: int64 entries, so 18 bits = 2 MiB per table); wider substrings fall back
#: to binary search over sorted unique keys.
_DIRECT_WIDTH = 18


def _split_points(n_bits: int, n_tables: int) -> list[tuple[int, int]]:
    """Contiguous substring spans covering 0..n_bits as evenly as possible."""
    base = n_bits // n_tables
    remainder = n_bits % n_tables
    spans = []
    start = 0
    for t in range(n_tables):
        width = base + (1 if t < remainder else 0)
        spans.append((start, start + width))
        start += width
    return spans


def _substring_key(bits: np.ndarray) -> int:
    """Pack one boolean substring into an integer bucket key (MSB first)."""
    key = 0
    for b in bits:
        key = (key << 1) | int(b)
    return key


def _bulk_keys(bools: np.ndarray) -> np.ndarray:
    """Bucket keys for every row of a boolean substring matrix at once.

    Equivalent to ``[_substring_key(row) for row in bools]`` but vectorized:
    one matmul against powers of two for widths that fit int64, a packbits
    fallback (object dtype, arbitrary precision) for wider substrings.
    """
    width = bools.shape[1]
    if width <= 62:
        powers = (1 << np.arange(width - 1, -1, -1)).astype(np.int64)
        return bools.astype(np.int64) @ powers
    packed = np.packbits(bools, axis=1)
    shift = 8 * packed.shape[1] - width
    return np.array(
        [int.from_bytes(row.tobytes(), "big") >> shift for row in packed],
        dtype=object,
    )


def _keys_within_radius(key: int, width: int, radius: int) -> list[int]:
    """All integer keys within Hamming distance ``radius`` of ``key``."""
    keys = [key]
    for r in range(1, radius + 1):
        for flip in combinations(range(width), r):
            mask = 0
            for bit in flip:
                mask |= 1 << bit
            keys.append(key ^ mask)
    return keys


@lru_cache(maxsize=None)
def _ring_masks(width: int, r: int) -> np.ndarray:
    """All XOR masks over ``width`` bits with exactly ``r`` bits set.

    Cached per (width, r) so probe expansion reuses the enumeration; int64
    for widths that fit, object dtype (arbitrary-precision ints) beyond.
    """
    dtype = np.int64 if width <= 62 else object
    if r == 0:
        return np.zeros(1, dtype=dtype)
    masks = []
    for flip in combinations(range(width), r):
        mask = 0
        for bit in flip:
            mask |= 1 << bit
        masks.append(mask)
    return np.array(masks, dtype=dtype)


@lru_cache(maxsize=None)
def _masks_within_radius(width: int, radius: int) -> np.ndarray:
    """All XOR masks over ``width`` bits with at most ``radius`` bits set."""
    return np.concatenate(
        [_ring_masks(width, r) for r in range(radius + 1)]
    )


def _gather_slices(
    starts: np.ndarray, lengths: np.ndarray, members: np.ndarray
) -> np.ndarray:
    """Concatenate ``members[starts[i] : starts[i]+lengths[i]]`` slices."""
    nz = lengths > 0
    starts, lengths = starts[nz], lengths[nz]
    total = int(lengths.sum())
    if total == 0:
        return _EMPTY_IDS
    out_starts = np.cumsum(lengths) - lengths
    indices = np.arange(total, dtype=np.int64) + np.repeat(
        starts - out_starts, lengths
    )
    return members[indices]


@register_backend("multi-index")
class MultiIndexHammingIndex:
    """Bucketed Hamming index with pigeonhole radius search.

    Parameters
    ----------
    n_bits:
        Code length ``k``.
    n_tables:
        Number of substring tables ``m``.  Larger m = cheaper probes but
        more candidate verification; m ≈ k / log2(n) is the classic choice.
    cache_size:
        If positive, keep an LRU :class:`QueryResultCache` of per-query
        results, cleared on every ``add``/``remove``.
    """

    def __init__(self, n_bits: int, n_tables: int = 4, cache_size: int = 0) -> None:
        if n_bits <= 0:
            raise ShapeError(f"n_bits must be positive: {n_bits}")
        if not 1 <= n_tables <= n_bits:
            raise ShapeError(
                f"n_tables must be in [1, {n_bits}], got {n_tables}"
            )
        self.n_bits = n_bits
        self.n_tables = n_tables
        self._spans = _split_points(n_bits, n_tables)
        self._widths = [end - start for start, end in self._spans]
        #: Per table: bucket key of every row ever added (dead rows included).
        self._row_keys: list[np.ndarray] = [
            np.empty(0, dtype=np.int64 if w <= 62 else object)
            for w in self._widths
        ]
        #: Per table: lazily (re)built CSR probe structure over alive rows.
        self._csr: list[tuple | None] = [None] * n_tables
        self._bits = np.empty((0, (n_bits + 7) // 8), dtype=np.uint8)
        self._alive = np.empty(0, dtype=bool)
        self._n_alive = 0
        self._cache = QueryResultCache(cache_size) if cache_size else None

    # -- mutation ---------------------------------------------------------------

    def add(self, codes: np.ndarray) -> "MultiIndexHammingIndex":
        """Append ±1 codes; new rows get the next insertion-order ids.

        Validation happens here, once — queries and searches never rescan
        the database codes.
        """
        codes = check_binary_codes(codes)
        if codes.shape[1] != self.n_bits:
            raise ShapeError(
                f"expected {self.n_bits}-bit codes, got {codes.shape[1]}"
            )
        bools = codes > 0
        n_new = bools.shape[0]
        self._bits = np.concatenate([self._bits, np.packbits(bools, axis=1)])
        self._alive = np.concatenate([self._alive, np.ones(n_new, dtype=bool)])
        self._n_alive += n_new
        for ti, (start, end) in enumerate(self._spans):
            self._row_keys[ti] = np.concatenate(
                [self._row_keys[ti], _bulk_keys(bools[:, start:end])]
            )
            self._csr[ti] = None
        if self._cache is not None:
            self._cache.clear()
        return self

    def remove(self, ids: np.ndarray) -> int:
        """Tombstone rows by stable id (unknown ids are ignored).

        Returns the number of rows actually removed.  Probe structures are
        rebuilt lazily over the surviving rows; ids are never renumbered.
        """
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        ids = ids[(ids >= 0) & (ids < self._alive.size)]
        targets = np.unique(ids[self._alive[ids]])
        if targets.size:
            self._alive[targets] = False
            self._n_alive -= int(targets.size)
            self._csr = [None] * self.n_tables
            if self._cache is not None:
                self._cache.clear()
        return int(targets.size)

    def vacuum(self) -> "MultiIndexHammingIndex":
        """Eagerly rebuild every probe structure over the alive rows."""
        for ti in range(self.n_tables):
            self._csr[ti] = None
            self._csr_table(ti)
        return self

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        return self._n_alive

    @property
    def cache(self) -> QueryResultCache | None:
        """The query-result cache, or ``None`` when caching is off."""
        return self._cache

    @property
    def bucket_counts(self) -> list[int]:
        """Number of buckets holding at least one alive row, per table."""
        self._require_built()
        return [self._occupied_buckets(ti) for ti in range(self.n_tables)]

    # -- probe structures -------------------------------------------------------

    def _csr_table(self, ti: int) -> tuple:
        """CSR probe structure for table ``ti``, rebuilt if stale.

        Direct mode: ``("direct", offsets, members, occupied_keys)`` with
        ``offsets`` of length ``2^width + 1`` so a probe key indexes its
        bucket directly.  Sorted mode: ``("sorted", unique_keys, offsets,
        members)`` resolved by binary search.  ``members`` holds alive row
        ids grouped by key.
        """
        csr = self._csr[ti]
        if csr is not None:
            return csr
        width = self._widths[ti]
        alive_rows = np.flatnonzero(self._alive)
        keys = self._row_keys[ti][alive_rows]
        order = np.argsort(keys, kind="stable")
        members = alive_rows[order]
        if width <= _DIRECT_WIDTH:
            counts = np.bincount(
                keys.astype(np.int64), minlength=1 << width
            )
            offsets = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
            )
            csr = ("direct", offsets, members, np.flatnonzero(counts))
        else:
            sorted_keys = keys[order]
            if sorted_keys.size:
                boundaries = (
                    np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
                )
                unique_keys = sorted_keys[
                    np.concatenate([np.zeros(1, dtype=np.int64), boundaries])
                ]
                offsets = np.concatenate(
                    [np.zeros(1, dtype=np.int64), boundaries,
                     np.array([sorted_keys.size], dtype=np.int64)]
                )
            else:
                unique_keys = sorted_keys
                offsets = np.zeros(1, dtype=np.int64)
            csr = ("sorted", unique_keys, offsets, members)
        self._csr[ti] = csr
        return csr

    def _occupied_buckets(self, ti: int) -> int:
        csr = self._csr_table(ti)
        return len(csr[3]) if csr[0] == "direct" else len(csr[1])

    def _probe_table(self, ti: int, probe_keys: np.ndarray) -> np.ndarray:
        """Alive row ids in any of the probed buckets (one vectorized gather)."""
        csr = self._csr_table(ti)
        if csr[0] == "direct":
            _, offsets, members, _ = csr
            starts = offsets[probe_keys]
            lengths = offsets[probe_keys + 1] - starts
        else:
            _, unique_keys, offsets, members = csr
            if unique_keys.size == 0:
                return _EMPTY_IDS
            pos = np.searchsorted(unique_keys, probe_keys)
            pos[pos == unique_keys.size] = 0
            valid = unique_keys[pos] == probe_keys
            pos = pos[valid]
            starts = offsets[pos]
            lengths = offsets[pos + 1] - starts
        return _gather_slices(starts, lengths, members)

    def _probe_scan(self, ti: int, query_key: int, lo: int, hi: int) -> np.ndarray:
        """Alive ids in buckets whose key lies within [lo, hi] of the query.

        Scans the occupied bucket keys with a vectorized popcount instead of
        enumerating probe masks — the cheaper strategy once the mask
        neighbourhood outgrows the number of occupied buckets (deep radii,
        where C(width, r) explodes but the table only holds n keys).
        """
        csr = self._csr_table(ti)
        if csr[0] == "direct":
            _, offsets, members, occupied = csr
            keys = occupied
        else:
            _, keys, offsets, members = csr
        if keys.size == 0:
            return _EMPTY_IDS
        distance = _popcount_keys(keys ^ query_key)
        if csr[0] == "direct":
            sel = keys[(distance >= lo) & (distance <= hi)]
            starts = offsets[sel]
            lengths = offsets[sel + 1] - starts
        else:
            pos = np.flatnonzero((distance >= lo) & (distance <= hi))
            starts = offsets[pos]
            lengths = offsets[pos + 1] - starts
        return _gather_slices(starts, lengths, members)

    # -- internals --------------------------------------------------------------

    def _require_built(self) -> None:
        if self._n_alive == 0:
            raise NotFittedError("index is empty; call add() first")

    def _check_queries(self, query_codes: np.ndarray) -> np.ndarray:
        query_codes = check_binary_codes(query_codes, "query_codes")
        if query_codes.shape[1] != self.n_bits:
            raise ShapeError(
                f"expected {self.n_bits}-bit queries, got {query_codes.shape[1]}"
            )
        return query_codes

    def _query_keys(self, query_bools: np.ndarray) -> list[np.ndarray]:
        """Per-table bucket key of every query row (bulk keying)."""
        return [
            _bulk_keys(query_bools[:, start:end]) for start, end in self._spans
        ]

    def _candidates_from_keys(
        self, keys_per_table: list, radius: int
    ) -> np.ndarray:
        """Pigeonhole candidate ids for one query at the given radius.

        ``keys_per_table[ti]`` is the query's bucket key in table ``ti``.
        Returns alive ids sorted ascending (so downstream lexsort
        tie-breaking matches the brute-force engine).
        """
        per_table_radius = radius // self.n_tables
        hit_lists = []
        for ti, width in enumerate(self._widths):
            probe_radius = min(per_table_radius, width)
            n_masks = sum(comb(width, r) for r in range(probe_radius + 1))
            if n_masks > self._occupied_buckets(ti):
                hits = self._probe_scan(ti, keys_per_table[ti], 0, probe_radius)
            else:
                masks = _masks_within_radius(width, probe_radius)
                hits = self._probe_table(ti, keys_per_table[ti] ^ masks)
            hit_lists.append(hits)
        found = np.concatenate(hit_lists)
        if found.size == 0:
            return _EMPTY_IDS
        return np.unique(found)

    def _candidates(self, query_bits: np.ndarray, radius: int) -> np.ndarray:
        """Candidate ids for one boolean query row (testing/diagnostic entry)."""
        keys = [
            _substring_key(query_bits[start:end]) for start, end in self._spans
        ]
        return self._candidates_from_keys(keys, radius)

    def _verify(
        self, packed_query_row: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        """Exact distances from one packed query to the candidate rows."""
        return packed_distances_to_one(packed_query_row, self._bits[candidates])

    # -- queries ----------------------------------------------------------------

    def radius_search(
        self, query_codes: np.ndarray, radius: int
    ) -> list[np.ndarray]:
        """All alive ids within ``radius`` per query (sorted ascending).

        Exact — candidates from the pigeonhole probe are verified against
        the packed codes, and the pigeonhole bound guarantees no true
        neighbour is missed.
        """
        self._require_built()
        if not 0 <= radius <= self.n_bits:
            raise ShapeError(f"radius must be in [0, {self.n_bits}], got {radius}")
        query_codes = self._check_queries(query_codes)
        query_bools = query_codes > 0
        packed_q = np.packbits(query_bools, axis=1)
        query_keys = self._query_keys(query_bools)
        results = []
        for qi in range(query_codes.shape[0]):
            if self._cache is not None:
                key = ("radius", radius, packed_q[qi].tobytes())
                hit = self._cache.get(key)
                if hit is not None:
                    results.append(hit.copy())
                    continue
            candidates = self._candidates_from_keys(
                [keys[qi] for keys in query_keys], radius
            )
            if candidates.size:
                distances = self._verify(packed_q[qi], candidates)
                hits = candidates[distances <= radius]
            else:
                hits = candidates
            if self._cache is not None:
                self._cache.put(("radius", radius, packed_q[qi].tobytes()), hits)
                hits = hits.copy()
            results.append(hits)
        return results

    def search(
        self, query_codes: np.ndarray, top_k: int = 10
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k search by expanding the probe radius until k hits verify.

        Ties break by id, matching the brute-force engine.  The probe grows
        one mask ring per step (per-table radius t covers every id within
        global Hamming distance ``m·t + m - 1`` by the pigeonhole bound),
        and each step verifies only the candidates that ring newly
        surfaced — accumulated distances are reused for both the stopping
        test and the final ranking, so every candidate is verified exactly
        once.
        """
        self._require_built()
        if not 1 <= top_k <= self._n_alive:
            raise ShapeError(
                f"top_k must be in [1, {self._n_alive}], got {top_k}"
            )
        query_codes = self._check_queries(query_codes)
        n_queries = query_codes.shape[0]
        out_idx = np.empty((n_queries, top_k), dtype=np.int64)
        out_dist = np.empty((n_queries, top_k), dtype=np.float64)
        query_bools = query_codes > 0
        packed_q = np.packbits(query_bools, axis=1)
        query_keys = self._query_keys(query_bools)
        m = self.n_tables
        for qi in range(n_queries):
            if self._cache is not None:
                hit = self._cache.get(("top_k", top_k, packed_q[qi].tobytes()))
                if hit is not None:
                    out_idx[qi], out_dist[qi] = hit
                    continue
            seen = np.zeros(self._alive.size, dtype=bool)
            candidates = _EMPTY_IDS
            distances = np.empty(0, dtype=np.uint16)
            t = 0
            while True:
                ring_hits = []
                for ti, width in enumerate(self._widths):
                    if t > width:
                        continue
                    if comb(width, t) > self._occupied_buckets(ti):
                        hits = self._probe_scan(ti, query_keys[ti][qi], t, t)
                    else:
                        probe = query_keys[ti][qi] ^ _ring_masks(width, t)
                        hits = self._probe_table(ti, probe)
                    ring_hits.append(hits)
                fresh = np.unique(np.concatenate(ring_hits)) if ring_hits \
                    else _EMPTY_IDS
                fresh = fresh[~seen[fresh]]
                if fresh.size:
                    seen[fresh] = True
                    candidates = np.concatenate([candidates, fresh])
                    distances = np.concatenate(
                        [distances, self._verify(packed_q[qi], fresh)]
                    )
                guaranteed = min(m * t + m - 1, self.n_bits)
                if (int((distances <= guaranteed).sum()) >= top_k
                        or guaranteed >= self.n_bits):
                    break
                t += 1
            order = np.lexsort((candidates, distances))[:top_k]
            out_idx[qi] = candidates[order]
            out_dist[qi] = distances[order]
            if self._cache is not None:
                self._cache.put(
                    ("top_k", top_k, packed_q[qi].tobytes()),
                    (out_idx[qi].copy(), out_dist[qi].copy()),
                )
        return out_idx, out_dist
