"""Multi-Index Hashing for sublinear Hamming-radius search.

Implements the classic MIH decomposition (Norouzi, Punjani & Fleet, CVPR
2012): split each k-bit code into ``m`` disjoint substrings and bucket the
database by each substring.  By the pigeonhole principle, any code within
Hamming radius ``r`` of a query must match the query *exactly or within
``floor(r/m)``* in at least one substring — so radius search only probes a
small neighbourhood of buckets per table instead of scanning the corpus.

This is the serving-side structure the paper's hash-lookup protocol
(Figure 3) implies at production scale; the brute-force
:class:`~repro.retrieval.engine.HammingIndex` remains the reference
implementation and the two are tested to agree exactly.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations

import numpy as np

from repro.errors import NotFittedError, ShapeError
from repro.retrieval.hamming import hamming_distance_matrix
from repro.utils.validation import check_binary_codes


def _split_points(n_bits: int, n_tables: int) -> list[tuple[int, int]]:
    """Contiguous substring spans covering 0..n_bits as evenly as possible."""
    base = n_bits // n_tables
    remainder = n_bits % n_tables
    spans = []
    start = 0
    for t in range(n_tables):
        width = base + (1 if t < remainder else 0)
        spans.append((start, start + width))
        start += width
    return spans


def _substring_key(bits: np.ndarray) -> int:
    """Pack a boolean substring into an integer bucket key."""
    key = 0
    for b in bits:
        key = (key << 1) | int(b)
    return key


def _keys_within_radius(key: int, width: int, radius: int) -> list[int]:
    """All integer keys within Hamming distance ``radius`` of ``key``."""
    keys = [key]
    for r in range(1, radius + 1):
        for flip in combinations(range(width), r):
            mask = 0
            for bit in flip:
                mask |= 1 << bit
            keys.append(key ^ mask)
    return keys


class MultiIndexHammingIndex:
    """Bucketed Hamming index with pigeonhole radius search.

    Parameters
    ----------
    n_bits:
        Code length ``k``.
    n_tables:
        Number of substring tables ``m``.  Larger m = cheaper probes but
        more candidate verification; m ≈ k / log2(n) is the classic choice.
    """

    def __init__(self, n_bits: int, n_tables: int = 4) -> None:
        if n_bits <= 0:
            raise ShapeError(f"n_bits must be positive: {n_bits}")
        if not 1 <= n_tables <= n_bits:
            raise ShapeError(
                f"n_tables must be in [1, {n_bits}], got {n_tables}"
            )
        self.n_bits = n_bits
        self.n_tables = n_tables
        self._spans = _split_points(n_bits, n_tables)
        self._tables: list[dict[int, list[int]]] | None = None
        self._codes: np.ndarray | None = None

    def add(self, codes: np.ndarray) -> "MultiIndexHammingIndex":
        """Index a ±1 code matrix (replaces existing contents)."""
        codes = check_binary_codes(codes)
        if codes.shape[1] != self.n_bits:
            raise ShapeError(
                f"expected {self.n_bits}-bit codes, got {codes.shape[1]}"
            )
        bools = codes > 0
        tables: list[dict[int, list[int]]] = []
        for start, end in self._spans:
            table: dict[int, list[int]] = defaultdict(list)
            for row, bits in enumerate(bools[:, start:end]):
                table[_substring_key(bits)].append(row)
            tables.append(dict(table))
        self._tables = tables
        self._codes = codes
        return self

    def __len__(self) -> int:
        return 0 if self._codes is None else self._codes.shape[0]

    @property
    def bucket_counts(self) -> list[int]:
        """Number of occupied buckets per substring table."""
        if self._tables is None:
            raise NotFittedError("index is empty; call add() first")
        return [len(t) for t in self._tables]

    def _candidates(self, query_bits: np.ndarray, radius: int) -> np.ndarray:
        """Pigeonhole candidate set for one query at the given radius."""
        assert self._tables is not None
        per_table_radius = radius // self.n_tables
        found: set[int] = set()
        for (start, end), table in zip(self._spans, self._tables):
            width = end - start
            probe_radius = min(per_table_radius, width)
            key = _substring_key(query_bits[start:end])
            for candidate_key in _keys_within_radius(key, width, probe_radius):
                found.update(table.get(candidate_key, ()))
        return np.fromiter(found, dtype=np.int64, count=len(found))

    def radius_search(
        self, query_codes: np.ndarray, radius: int
    ) -> list[np.ndarray]:
        """All database ids within ``radius`` per query (sorted ascending).

        Exact — candidates from the pigeonhole probe are verified against
        the full codes, and the pigeonhole bound guarantees no true
        neighbour is missed.
        """
        if self._codes is None or self._tables is None:
            raise NotFittedError("index is empty; call add() first")
        if not 0 <= radius <= self.n_bits:
            raise ShapeError(f"radius must be in [0, {self.n_bits}], got {radius}")
        query_codes = check_binary_codes(query_codes)
        if query_codes.shape[1] != self.n_bits:
            raise ShapeError(
                f"expected {self.n_bits}-bit queries, got {query_codes.shape[1]}"
            )
        results = []
        query_bools = query_codes > 0
        for qi in range(query_codes.shape[0]):
            candidates = self._candidates(query_bools[qi], radius)
            if candidates.size == 0:
                results.append(candidates)
                continue
            distances = hamming_distance_matrix(
                query_codes[qi : qi + 1], self._codes[candidates]
            )[0]
            hits = candidates[distances <= radius]
            results.append(np.sort(hits))
        return results

    def search(
        self, query_codes: np.ndarray, top_k: int = 10
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k search by expanding the probe radius until k hits verify.

        Ties break by database index, matching the brute-force engine.
        """
        if self._codes is None:
            raise NotFittedError("index is empty; call add() first")
        n = self._codes.shape[0]
        if not 1 <= top_k <= n:
            raise ShapeError(f"top_k must be in [1, {n}], got {top_k}")
        query_codes = check_binary_codes(query_codes)
        out_idx = np.empty((query_codes.shape[0], top_k), dtype=np.int64)
        out_dist = np.empty((query_codes.shape[0], top_k))
        query_bools = query_codes > 0
        for qi in range(query_codes.shape[0]):
            # Grow the radius in table-width steps until enough verified hits.
            radius = self.n_tables  # smallest radius that probes r/m = 1
            candidates = self._candidates(query_bools[qi], 0)
            while True:
                if candidates.size >= top_k or radius > self.n_bits:
                    distances = (
                        hamming_distance_matrix(
                            query_codes[qi : qi + 1], self._codes[candidates]
                        )[0]
                        if candidates.size
                        else np.empty(0)
                    )
                    # Verified hits must actually lie within the guaranteed
                    # radius, otherwise farther points could be missed.
                    guaranteed = min(radius - 1, self.n_bits)
                    within = candidates[distances <= guaranteed]
                    if within.size >= top_k or radius > self.n_bits:
                        break
                candidates = self._candidates(query_bools[qi],
                                              min(radius, self.n_bits))
                radius += self.n_tables
            distances = hamming_distance_matrix(
                query_codes[qi : qi + 1], self._codes[candidates]
            )[0]
            order = np.lexsort((candidates, distances))[:top_k]
            out_idx[qi] = candidates[order]
            out_dist[qi] = distances[order]
        return out_idx, out_dist
