"""Retrieval quality metrics: MAP@n, P@N curves, Hamming-radius PR curves.

These implement the paper's three evaluation metrics (§4.2):

- **MAP** with top-n truncation (Eq. 12; the paper uses n = 5000),
- **P@N** — precision among the top-N Hamming-ranked results,
- **PR curve** — precision/recall of hash-lookup as the Hamming radius
  sweeps 0..k (Figure 3's protocol).

All ranking uses stable sorts so ties in Hamming distance break by database
index, making results deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.retrieval.hamming import hamming_distance_matrix

#: The paper's MAP truncation depth (§4.2: "we set n as 5000").
PAPER_MAP_DEPTH = 5000

#: P@N evaluation points used in Figure 2.
PAPER_PN_POINTS: tuple[int, ...] = (100, 300, 500, 700, 900, 1000)


def _check_rank_inputs(distances: np.ndarray, relevance: np.ndarray) -> None:
    if distances.shape != relevance.shape:
        raise ShapeError(
            f"distances {distances.shape} and relevance {relevance.shape} differ"
        )
    if distances.ndim != 2:
        raise ShapeError(f"expected 2-D matrices, got {distances.shape}")


def average_precision(ranked_relevance: np.ndarray, top_n: int) -> float:
    """AP@n of one ranked relevance vector (paper Eq. 12).

    ``AP = Σ_i [I(i)/N · Σ_{j<=i} I(j)/i]`` over the top ``n`` results,
    where ``N`` is the number of relevant items among them.  Queries with no
    relevant item in the top n score 0 (the usual convention).
    """
    rel = np.asarray(ranked_relevance, dtype=np.float64)[:top_n]
    n_rel = rel.sum()
    if n_rel == 0:
        return 0.0
    cum_precision = np.cumsum(rel) / np.arange(1, rel.size + 1)
    return float((cum_precision * rel).sum() / n_rel)


def mean_average_precision(
    query_codes: np.ndarray,
    db_codes: np.ndarray,
    relevance: np.ndarray,
    top_n: int = PAPER_MAP_DEPTH,
) -> float:
    """MAP@n over Hamming-ranked retrieval (the paper's headline metric)."""
    distances = hamming_distance_matrix(query_codes, db_codes)
    return mean_average_precision_from_distances(distances, relevance, top_n)


def mean_average_precision_from_distances(
    distances: np.ndarray,
    relevance: np.ndarray,
    top_n: int = PAPER_MAP_DEPTH,
) -> float:
    """MAP@n given a precomputed distance matrix."""
    _check_rank_inputs(distances, relevance)
    order = np.argsort(distances, axis=1, kind="stable")
    ranked = np.take_along_axis(relevance.astype(np.float64), order, axis=1)
    aps = [average_precision(row, top_n) for row in ranked]
    return float(np.mean(aps))


def precision_at_n(
    distances: np.ndarray,
    relevance: np.ndarray,
    points: tuple[int, ...] = PAPER_PN_POINTS,
) -> dict[int, float]:
    """Mean precision among the top-N results for each N (Figure 2).

    ``points`` may be unsorted; an empty tuple yields an empty dict.
    """
    _check_rank_inputs(distances, relevance)
    if not points:
        return {}
    max_n = max(points)
    if max_n > distances.shape[1]:
        raise ShapeError(
            f"P@{max_n} requested but database has {distances.shape[1]} items"
        )
    order = np.argsort(distances, axis=1, kind="stable")[:, :max_n]
    ranked = np.take_along_axis(relevance.astype(np.float64), order, axis=1)
    cum = np.cumsum(ranked, axis=1)
    return {
        n: float((cum[:, n - 1] / n).mean())
        for n in points
    }


@dataclass(frozen=True)
class PRCurve:
    """Precision/recall at each Hamming radius 0..k (Figure 3's protocol).

    ``precision[r]`` / ``recall[r]`` aggregate retrieval within radius ``r``
    micro-averaged over queries (total relevant retrieved / total retrieved),
    which keeps small radii well-defined even when some queries retrieve
    nothing.
    """

    radii: np.ndarray
    precision: np.ndarray
    recall: np.ndarray

    def __post_init__(self) -> None:
        if not (self.radii.shape == self.precision.shape == self.recall.shape):
            raise ShapeError("PRCurve arrays must share one shape")


def pr_curve_hamming(
    query_codes: np.ndarray,
    db_codes: np.ndarray,
    relevance: np.ndarray,
) -> PRCurve:
    """PR curve from a full Hamming-radius sweep (0..k, step 1)."""
    distances = hamming_distance_matrix(query_codes, db_codes).astype(np.int64)
    _check_rank_inputs(distances, relevance)
    k = query_codes.shape[1]
    rel = relevance.astype(bool)
    total_relevant = rel.sum()
    if total_relevant == 0:
        raise ShapeError("relevance matrix has no relevant pairs")

    # Histogram distances once, split by relevance, then cumulate over radius.
    bins = np.arange(k + 2)
    relevant_hist = np.histogram(distances[rel], bins=bins)[0]
    all_hist = np.histogram(distances, bins=bins)[0]
    relevant_cum = np.cumsum(relevant_hist).astype(np.float64)
    all_cum = np.cumsum(all_hist).astype(np.float64)

    precision = np.divide(
        relevant_cum, all_cum, out=np.zeros_like(relevant_cum), where=all_cum > 0
    )
    recall = relevant_cum / float(total_relevant)
    return PRCurve(radii=np.arange(k + 1), precision=precision, recall=recall)
