"""Hamming retrieval engine and one-call evaluation harness.

:class:`HammingIndex` is the production-shaped piece: bit-packed storage,
top-k Hamming ranking and radius lookup — what a deployed image-search
system built on these hash codes would run.  :func:`evaluate_hashing` is the
experiment-shaped piece: given a fitted hashing method and a dataset it
computes every §4.2 metric in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.errors import NotFittedError, ShapeError
from repro.retrieval.hamming import (
    PackedCodes,
    hamming_distance_matrix,
    pack_codes,
    packed_hamming_distance,
)
from repro.retrieval.metrics import (
    PAPER_MAP_DEPTH,
    PAPER_PN_POINTS,
    PRCurve,
    mean_average_precision_from_distances,
    pr_curve_hamming,
    precision_at_n,
)
from repro.retrieval.protocol import relevance_matrix


class Hasher(Protocol):
    """Anything that maps images to ±1 codes (UHSCM and all baselines)."""

    def encode(self, images: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...


class HammingIndex:
    """Bit-packed Hamming nearest-neighbour index."""

    def __init__(self, n_bits: int) -> None:
        if n_bits <= 0:
            raise ShapeError(f"n_bits must be positive: {n_bits}")
        self.n_bits = n_bits
        self._packed: PackedCodes | None = None

    def add(self, codes: np.ndarray) -> "HammingIndex":
        """Replace index contents with the given ±1 codes."""
        if codes.shape[1] != self.n_bits:
            raise ShapeError(
                f"expected {self.n_bits}-bit codes, got {codes.shape[1]}"
            )
        self._packed = pack_codes(codes)
        return self

    def __len__(self) -> int:
        return 0 if self._packed is None else len(self._packed)

    @property
    def storage_bytes(self) -> int:
        """Bytes used to store the database codes."""
        return 0 if self._packed is None else self._packed.nbytes

    def _require_built(self) -> PackedCodes:
        if self._packed is None:
            raise NotFittedError("index is empty; call add() first")
        return self._packed

    def search(
        self, query_codes: np.ndarray, top_k: int = 10
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k Hamming ranking: returns (indices, distances).

        Ties break by database index (stable), matching the metric module.
        """
        packed_db = self._require_built()
        if top_k <= 0 or top_k > len(packed_db):
            raise ShapeError(
                f"top_k must be in [1, {len(packed_db)}], got {top_k}"
            )
        distances = packed_hamming_distance(pack_codes(query_codes), packed_db)
        idx = np.argsort(distances, axis=1, kind="stable")[:, :top_k]
        return idx, np.take_along_axis(distances, idx, axis=1)

    def radius_search(self, query_codes: np.ndarray, radius: int) -> list[np.ndarray]:
        """Hash-lookup: all database ids within Hamming radius per query."""
        packed_db = self._require_built()
        if not 0 <= radius <= self.n_bits:
            raise ShapeError(f"radius must be in [0, {self.n_bits}], got {radius}")
        distances = packed_hamming_distance(pack_codes(query_codes), packed_db)
        return [np.flatnonzero(row <= radius) for row in distances]


@dataclass(frozen=True)
class RetrievalReport:
    """Every §4.2 metric for one (method, dataset, bit-length) cell."""

    map: float
    precision_at_n: dict[int, float]
    pr_curve: PRCurve
    n_bits: int

    def __str__(self) -> str:
        pn = ", ".join(f"P@{n}={v:.3f}" for n, v in self.precision_at_n.items())
        return f"RetrievalReport(k={self.n_bits}, MAP={self.map:.3f}, {pn})"


def evaluate_codes(
    query_codes: np.ndarray,
    db_codes: np.ndarray,
    query_labels: np.ndarray,
    db_labels: np.ndarray,
    top_n: int = PAPER_MAP_DEPTH,
    pn_points: tuple[int, ...] = PAPER_PN_POINTS,
) -> RetrievalReport:
    """Full evaluation of precomputed hash codes."""
    relevance = relevance_matrix(query_labels, db_labels)
    distances = hamming_distance_matrix(query_codes, db_codes)
    usable_points = tuple(p for p in pn_points if p <= db_codes.shape[0])
    if not usable_points:
        usable_points = (min(pn_points[0], db_codes.shape[0]),)
    return RetrievalReport(
        map=mean_average_precision_from_distances(
            distances, relevance, min(top_n, db_codes.shape[0])
        ),
        precision_at_n=precision_at_n(distances, relevance, usable_points),
        pr_curve=pr_curve_hamming(query_codes, db_codes, relevance),
        n_bits=query_codes.shape[1],
    )


def evaluate_hashing(method: Hasher, dataset, **kwargs) -> RetrievalReport:
    """Encode a dataset's query/database splits with ``method`` and evaluate.

    ``dataset`` is a :class:`~repro.datasets.base.HashingDataset`; extra
    keyword arguments pass through to :func:`evaluate_codes`.
    """
    query_codes = method.encode(dataset.query_images)
    db_codes = method.encode(dataset.database_images)
    return evaluate_codes(
        query_codes,
        db_codes,
        dataset.query_labels,
        dataset.database_labels,
        **kwargs,
    )
