"""Hamming retrieval engine and one-call evaluation harness.

:class:`HammingIndex` is the production-shaped piece: bit-packed storage,
top-k Hamming ranking and radius lookup over an incrementally mutable corpus
— what a deployed image-search system built on these hash codes would run.
It registers as the ``"bruteforce"`` :mod:`~repro.retrieval.backend` and is
the exactness reference for every other backend.

:func:`evaluate_hashing` is the experiment-shaped piece: given a fitted
hashing method and a dataset it computes every §4.2 metric in one pass.
:func:`evaluate_codes` accepts an optional ``backend`` so the same metrics
can be driven through any registered serving index instead of the direct
BLAS distance path.

Incremental semantics: ``add()`` appends (stable insertion-order ids),
``remove(ids)`` drops rows by id without renumbering survivors, and all
input validation happens at mutation time — queries are validated once per
call, never per database row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.errors import NotFittedError, ShapeError
from repro.retrieval.backend import (
    QueryResultCache,
    RetrievalBackend,
    cached_radius,
    cached_topk,
    make_backend,
    register_backend,
)
from repro.retrieval.hamming import (
    PackedCodes,
    hamming_distance_matrix,
    packed_hamming_distance,
)
from repro.retrieval.metrics import (
    PAPER_MAP_DEPTH,
    PAPER_PN_POINTS,
    PRCurve,
    mean_average_precision_from_distances,
    pr_curve_hamming,
    precision_at_n,
)
from repro.retrieval.protocol import relevance_matrix
from repro.utils.validation import check_binary_codes


class Hasher(Protocol):
    """Anything that maps images to ±1 codes (UHSCM and all baselines)."""

    def encode(self, images: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...


@register_backend("bruteforce")
class HammingIndex:
    """Bit-packed brute-force Hamming index with incremental updates.

    Parameters
    ----------
    n_bits:
        Code length ``k``.
    cache_size:
        If positive, keep an LRU :class:`QueryResultCache` of per-query
        results, cleared on every ``add``/``remove``.
    """

    def __init__(self, n_bits: int, cache_size: int = 0) -> None:
        if n_bits <= 0:
            raise ShapeError(f"n_bits must be positive: {n_bits}")
        self.n_bits = n_bits
        self._bits = np.empty((0, (n_bits + 7) // 8), dtype=np.uint8)
        self._ids = np.empty(0, dtype=np.int64)
        self._next_id = 0
        self._cache = QueryResultCache(cache_size) if cache_size else None

    # -- mutation ---------------------------------------------------------------

    def add(self, codes: np.ndarray) -> "HammingIndex":
        """Append ±1 codes; new rows get the next insertion-order ids."""
        packed = self._pack(codes)
        self._bits = np.concatenate([self._bits, packed.bits])
        self._ids = np.concatenate([
            self._ids,
            np.arange(self._next_id, self._next_id + len(packed), dtype=np.int64),
        ])
        self._next_id += len(packed)
        if self._cache is not None:
            self._cache.clear()
        return self

    def remove(self, ids: np.ndarray) -> int:
        """Remove rows by stable id (unknown ids are ignored).

        Returns the number of rows actually removed.  Surviving rows keep
        their ids.
        """
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        keep = ~np.isin(self._ids, ids)
        removed = int(self._ids.size - keep.sum())
        if removed:
            self._bits = self._bits[keep]
            self._ids = self._ids[keep]
            if self._cache is not None:
                self._cache.clear()
        return removed

    def clear(self) -> "HammingIndex":
        """Drop all rows (ids keep counting up across clears)."""
        self._bits = self._bits[:0]
        self._ids = self._ids[:0]
        if self._cache is not None:
            self._cache.clear()
        return self

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        return self._ids.size

    @property
    def storage_bytes(self) -> int:
        """Bytes used to store the database codes."""
        return int(self._bits.nbytes)

    @property
    def cache(self) -> QueryResultCache | None:
        """The query-result cache, or ``None`` when caching is off."""
        return self._cache

    # -- validation helpers -----------------------------------------------------

    def _pack(self, codes: np.ndarray, name: str = "codes") -> PackedCodes:
        """Validate (once) and bit-pack a ±1 matrix of this index's width."""
        codes = check_binary_codes(codes, name)
        if codes.shape[1] != self.n_bits:
            raise ShapeError(
                f"expected {self.n_bits}-bit {name}, got {codes.shape[1]}"
            )
        return PackedCodes(bits=np.packbits(codes > 0, axis=1),
                           n_bits=self.n_bits)

    def _require_built(self) -> PackedCodes:
        if self._ids.size == 0:
            raise NotFittedError("index is empty; call add() first")
        return PackedCodes(bits=self._bits, n_bits=self.n_bits)

    # -- queries ----------------------------------------------------------------

    def search(
        self, query_codes: np.ndarray, top_k: int = 10
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k Hamming ranking: returns (ids, distances).

        Ties break by id (stable), matching the metric module.
        """
        packed_db = self._require_built()
        if top_k <= 0 or top_k > len(packed_db):
            raise ShapeError(
                f"top_k must be in [1, {len(packed_db)}], got {top_k}"
            )
        packed_q = self._pack(query_codes, "query_codes")

        def compute(rows: PackedCodes) -> tuple[np.ndarray, np.ndarray]:
            distances = packed_hamming_distance(rows, packed_db)
            # Fold the id tie-break into one collision-free composite key
            # (distance major, id minor): selection can then use O(n)
            # argpartition instead of a full sort and still return exactly
            # the stable (distance, id) ranking.  int32 keys when they fit
            # (the common case) halve the partition's memory traffic.
            ctype = (np.int32
                     if (self.n_bits + 1) * self._next_id < 2**31
                     else np.int64)
            composite = distances.astype(ctype)
            composite *= ctype(self._next_id)
            composite += self._ids.astype(ctype)[None, :]
            if top_k < distances.shape[1]:
                part = np.argpartition(composite, top_k - 1, axis=1)[:, :top_k]
                order = np.argsort(
                    np.take_along_axis(composite, part, axis=1), axis=1
                )
                idx = np.take_along_axis(part, order, axis=1)
            else:
                idx = np.argsort(composite, axis=1)
            dist = np.take_along_axis(distances, idx, axis=1).astype(np.float64)
            return self._ids[idx], dist

        if self._cache is None:
            return compute(packed_q)
        return cached_topk(
            self._cache, packed_q.bits, top_k,
            lambda misses: compute(
                PackedCodes(bits=packed_q.bits[misses], n_bits=self.n_bits)
            ),
        )

    def radius_search(self, query_codes: np.ndarray, radius: int) -> list[np.ndarray]:
        """Hash-lookup: ids of all alive rows within Hamming radius per query."""
        packed_db = self._require_built()
        if not 0 <= radius <= self.n_bits:
            raise ShapeError(f"radius must be in [0, {self.n_bits}], got {radius}")
        packed_q = self._pack(query_codes, "query_codes")

        def compute(rows: PackedCodes) -> list[np.ndarray]:
            distances = packed_hamming_distance(rows, packed_db)
            return [self._ids[row <= radius] for row in distances]

        if self._cache is None:
            return compute(packed_q)
        return cached_radius(
            self._cache, packed_q.bits, radius,
            lambda misses: compute(
                PackedCodes(bits=packed_q.bits[misses], n_bits=self.n_bits)
            ),
        )


@dataclass(frozen=True)
class RetrievalReport:
    """Every §4.2 metric for one (method, dataset, bit-length) cell."""

    map: float
    precision_at_n: dict[int, float]
    pr_curve: PRCurve
    n_bits: int

    def __str__(self) -> str:
        pn = ", ".join(f"P@{n}={v:.3f}" for n, v in self.precision_at_n.items())
        return f"RetrievalReport(k={self.n_bits}, MAP={self.map:.3f}, {pn})"


def _backend_distance_matrix(
    backend: str | RetrievalBackend,
    query_codes: np.ndarray,
    db_codes: np.ndarray,
) -> np.ndarray:
    """Full (n_query, n_db) distance matrix served through a backend.

    A string builds a fresh index over ``db_codes`` from the registry; a
    backend instance is used as-is (filled with ``db_codes`` when empty —
    a prebuilt instance must hold exactly ``db_codes`` in order, with ids
    0..n-1, for the metrics to be meaningful).
    """
    if isinstance(backend, str):
        index = make_backend(backend, db_codes.shape[1])
    else:
        index = backend
    if len(index) == 0:
        index.add(db_codes)
    n_db = db_codes.shape[0]
    if len(index) != n_db:
        raise ShapeError(
            f"backend holds {len(index)} rows, database has {n_db}"
        )
    ids, dist = index.search(query_codes, top_k=len(index))
    if ids.min() < 0 or ids.max() >= n_db:
        raise ShapeError(
            f"backend ids must cover 0..{n_db - 1} (a prebuilt index with "
            f"removals has renumbered gaps); got id range "
            f"[{ids.min()}, {ids.max()}]"
        )
    distances = np.full((query_codes.shape[0], n_db), np.inf)
    rows = np.arange(query_codes.shape[0])[:, None]
    distances[rows, ids] = dist
    if np.isinf(distances).any():
        raise ShapeError(
            "backend search did not return every database id for every query"
        )
    return distances


def evaluate_codes(
    query_codes: np.ndarray,
    db_codes: np.ndarray,
    query_labels: np.ndarray,
    db_labels: np.ndarray,
    top_n: int = PAPER_MAP_DEPTH,
    pn_points: tuple[int, ...] = PAPER_PN_POINTS,
    backend: str | RetrievalBackend | None = None,
) -> RetrievalReport:
    """Full evaluation of precomputed hash codes.

    ``backend`` optionally routes distance computation through a registered
    serving backend (``"bruteforce"``, ``"multi-index"``, or an instance)
    instead of the direct BLAS path; all backends are exact, so the metrics
    are identical either way.
    """
    relevance = relevance_matrix(query_labels, db_labels)
    if backend is None:
        distances = hamming_distance_matrix(query_codes, db_codes)
    else:
        distances = _backend_distance_matrix(backend, query_codes, db_codes)
    usable_points = tuple(p for p in pn_points if p <= db_codes.shape[0])
    if not usable_points and pn_points:
        # Every requested point exceeds the database; clamp to its size
        # (order-independent — pn_points need not be sorted).
        usable_points = (db_codes.shape[0],)
    return RetrievalReport(
        map=mean_average_precision_from_distances(
            distances, relevance, min(top_n, db_codes.shape[0])
        ),
        precision_at_n=precision_at_n(distances, relevance, usable_points),
        pr_curve=pr_curve_hamming(query_codes, db_codes, relevance),
        n_bits=query_codes.shape[1],
    )


def evaluate_hashing(method: Hasher, dataset, **kwargs) -> RetrievalReport:
    """Encode a dataset's query/database splits with ``method`` and evaluate.

    ``dataset`` is a :class:`~repro.datasets.base.HashingDataset`; extra
    keyword arguments pass through to :func:`evaluate_codes`.
    """
    query_codes = method.encode(dataset.query_images)
    db_codes = method.encode(dataset.database_images)
    return evaluate_codes(
        query_codes,
        db_codes,
        dataset.query_labels,
        dataset.database_labels,
        **kwargs,
    )
