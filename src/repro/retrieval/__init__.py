"""Hamming retrieval engine and the paper's evaluation protocol (§4.2).

The backend registry (:mod:`repro.retrieval.backend`) exposes every index
through the :class:`RetrievalBackend` protocol: ``"bruteforce"`` is the
bit-packed linear scan, ``"multi-index"`` the sublinear MIH structure, and
``"sharded"`` hash-partitions rows across any of the others.  All support
incremental ``add()``/``remove()`` plus an optional LRU query-result
cache, and all agree bit-for-bit.
"""

from repro.retrieval.backend import (
    QueryResultCache,
    RetrievalBackend,
    backend_names,
    backend_options,
    make_backend,
    register_backend,
)
from repro.retrieval.engine import (
    HammingIndex,
    Hasher,
    RetrievalReport,
    evaluate_codes,
    evaluate_hashing,
)
from repro.retrieval.hamming import (
    PackedCodes,
    hamming_distance_matrix,
    pack_codes,
    packed_distances_to_one,
    packed_hamming_distance,
    unpack_codes,
)
from repro.retrieval.multi_index import MultiIndexHammingIndex
from repro.retrieval.sharded import ShardedIndex
from repro.retrieval.metrics import (
    PAPER_MAP_DEPTH,
    PAPER_PN_POINTS,
    PRCurve,
    average_precision,
    mean_average_precision,
    mean_average_precision_from_distances,
    pr_curve_hamming,
    precision_at_n,
)
from repro.retrieval.protocol import relevance_matrix

__all__ = [
    "HammingIndex",
    "Hasher",
    "MultiIndexHammingIndex",
    "PAPER_MAP_DEPTH",
    "PAPER_PN_POINTS",
    "PRCurve",
    "PackedCodes",
    "QueryResultCache",
    "RetrievalBackend",
    "RetrievalReport",
    "ShardedIndex",
    "average_precision",
    "backend_names",
    "backend_options",
    "evaluate_codes",
    "evaluate_hashing",
    "hamming_distance_matrix",
    "make_backend",
    "mean_average_precision",
    "mean_average_precision_from_distances",
    "pack_codes",
    "packed_distances_to_one",
    "packed_hamming_distance",
    "pr_curve_hamming",
    "precision_at_n",
    "register_backend",
    "relevance_matrix",
    "unpack_codes",
]
