"""Hamming retrieval engine and the paper's evaluation protocol (§4.2)."""

from repro.retrieval.engine import (
    HammingIndex,
    Hasher,
    RetrievalReport,
    evaluate_codes,
    evaluate_hashing,
)
from repro.retrieval.hamming import (
    PackedCodes,
    hamming_distance_matrix,
    pack_codes,
    packed_hamming_distance,
    unpack_codes,
)
from repro.retrieval.multi_index import MultiIndexHammingIndex
from repro.retrieval.metrics import (
    PAPER_MAP_DEPTH,
    PAPER_PN_POINTS,
    PRCurve,
    average_precision,
    mean_average_precision,
    mean_average_precision_from_distances,
    pr_curve_hamming,
    precision_at_n,
)
from repro.retrieval.protocol import relevance_matrix

__all__ = [
    "HammingIndex",
    "Hasher",
    "MultiIndexHammingIndex",
    "PAPER_MAP_DEPTH",
    "PAPER_PN_POINTS",
    "PRCurve",
    "PackedCodes",
    "RetrievalReport",
    "average_precision",
    "evaluate_codes",
    "evaluate_hashing",
    "hamming_distance_matrix",
    "mean_average_precision",
    "mean_average_precision_from_distances",
    "pack_codes",
    "packed_hamming_distance",
    "pr_curve_hamming",
    "precision_at_n",
    "relevance_matrix",
    "unpack_codes",
]
