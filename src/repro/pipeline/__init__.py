"""Staged execution of Algorithm 1 over a content-addressed artifact store.

The pipeline package decomposes the §3.3 mining → denoise → Q construction
flow and the §3.4 training loop into explicit, fingerprinted
:class:`~repro.pipeline.stages.Stage` steps whose outputs live in an
:class:`~repro.pipeline.store.ArtifactStore`.  Because Q is independent of
the code length, a multi-bit-width sweep mines each dataset once; because
train/encode artifacts persist on disk, an interrupted table run resumes
from its completed (method, n_bits) cells.
"""

from repro.pipeline.fingerprint import (
    CODE_FORMAT_VERSION,
    array_fingerprint,
    canonical,
    fingerprint,
)
from repro.pipeline.stages import (
    BUILD_Q,
    DENOISE,
    ENCODE,
    MINE,
    TRAIN,
    Stage,
    dataset_key,
    run_stage,
    run_stage_streaming,
)
from repro.pipeline.store import (
    Artifact,
    ArtifactStore,
    StreamingArtifactWriter,
    content_digest,
    read_archive,
    read_raw_archive,
    write_archive,
    write_raw_archive,
)

__all__ = [
    "Artifact",
    "ArtifactStore",
    "BUILD_Q",
    "CODE_FORMAT_VERSION",
    "DENOISE",
    "ENCODE",
    "MINE",
    "Stage",
    "StreamingArtifactWriter",
    "TRAIN",
    "array_fingerprint",
    "canonical",
    "content_digest",
    "dataset_key",
    "fingerprint",
    "read_archive",
    "read_raw_archive",
    "run_stage",
    "run_stage_streaming",
    "write_archive",
    "write_raw_archive",
]
