"""Deterministic fingerprints for pipeline stages and their inputs.

A stage's fingerprint is the sha256 of a *canonical* JSON rendering of
everything that can change its output: the stage name and version, its
configuration parameters, the fingerprints of its upstream stages, and a
global code-format version bumped whenever the meaning of cached artifacts
changes.  Two runs that would compute the same artifact therefore hash to
the same address in the :class:`~repro.pipeline.store.ArtifactStore`, and a
change to *any* upstream config field changes every downstream fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, is_dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigurationError

#: Version of the on-disk artifact format / stage semantics.  Bumping it
#: invalidates every cached artifact (their fingerprints all change).
CODE_FORMAT_VERSION = 1


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-stable structure.

    Dict keys are emitted sorted by :func:`json.dumps`; tuples and lists
    collapse to lists; dataclasses to their field dicts; numpy scalars to
    Python scalars; floats keep full ``repr`` precision via JSON.  Arrays are
    rejected — hash them explicitly with :func:`array_fingerprint` so large
    buffers never end up inside a JSON payload by accident.
    """
    if isinstance(value, np.ndarray):
        raise ConfigurationError(
            "arrays cannot be fingerprinted implicitly; use array_fingerprint"
        )
    if is_dataclass(value) and not isinstance(value, type):
        return canonical(asdict(value))
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"cannot canonicalize {type(value).__name__!r} for fingerprinting"
    )


def fingerprint(payload: Any) -> str:
    """sha256 hex digest of the canonical JSON form of ``payload``."""
    text = json.dumps(canonical(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def array_fingerprint(array: np.ndarray) -> str:
    """Content hash of an array (dtype + shape + raw bytes)."""
    array = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(array.dtype).encode())
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()
