"""Content-addressed artifact store backing the staged UHSCM pipeline.

Artifacts are ``(meta, arrays)`` pairs — a small JSON-able metadata dict
plus named numpy arrays — addressed by their stage fingerprint.  The store
is a bounded in-memory LRU over an optional on-disk layer:

- **memory**: an ``OrderedDict`` of the most recently used artifacts, so a
  sweep that re-reads the same Q matrix never touches disk;
- **disk** (when ``cache_dir`` is given): one ``.npz`` archive per artifact
  under ``<cache_dir>/objects/``, written atomically (tmp + rename) so a
  killed run never leaves a truncated artifact behind.  File mtimes double
  as the LRU clock; eviction removes the stalest archives once
  ``max_entries`` / ``max_bytes`` is exceeded.

Hit/miss/put/eviction counters are kept per stage and — with a disk layer —
persisted to ``<cache_dir>/stats.json`` after every event, so ``repro.cli
cache stats`` reports on runs that died mid-flight.

The archive format (``__meta__`` JSON row + named arrays in one ``.npz``)
is shared with :mod:`repro.core.persistence`, which is a thin client of
:func:`write_archive` / :func:`read_archive`.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError

_META_KEY = "__meta__"


# -- archive (de)serialization ------------------------------------------------


def write_archive(
    path: str | Path, meta: dict, arrays: dict[str, np.ndarray]
) -> Path:
    """Atomically write ``meta`` + ``arrays`` as one ``.npz`` archive."""
    path = Path(path)
    if _META_KEY in arrays:
        raise ConfigurationError(f"array name {_META_KEY!r} is reserved")
    payload = {
        _META_KEY: np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
    }
    payload.update(arrays)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return path


def read_archive(path: str | Path) -> tuple[dict, dict[str, np.ndarray]]:
    """Read an archive written by :func:`write_archive`."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no such archive: {path}")
    with np.load(path) as archive:
        if _META_KEY not in archive.files:
            raise ConfigurationError(f"not a repro archive (no metadata): {path}")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        arrays = {k: archive[k] for k in archive.files if k != _META_KEY}
    return meta, arrays


# -- the store ----------------------------------------------------------------


@dataclass
class Artifact:
    """One cached stage output: JSON metadata plus named arrays."""

    key: str
    meta: dict
    arrays: dict[str, np.ndarray] = field(default_factory=dict)


class ArtifactStore:
    """Bounded, content-addressed cache of pipeline stage outputs.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk layer; ``None`` keeps the store purely
        in-memory (artifacts die with the process, stats are not persisted).
    max_entries / max_bytes:
        Disk-layer bounds; the least recently used archives are evicted
        once either is exceeded.  ``None`` disables the bound.
    memory_entries / memory_bytes:
        Bounds of the in-memory LRU layer (always bounded); an artifact
        whose arrays alone exceed ``memory_bytes`` is served from disk
        only, so table-scale Q matrices do not stay pinned in RAM.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        memory_entries: int = 64,
        memory_bytes: int = 256 * 1024 * 1024,
    ) -> None:
        if memory_entries < 0:
            raise ConfigurationError(
                f"memory_entries must be >= 0: {memory_entries}"
            )
        if memory_bytes < 0:
            raise ConfigurationError(
                f"memory_bytes must be >= 0: {memory_bytes}"
            )
        if max_entries is not None and max_entries <= 0:
            raise ConfigurationError(f"max_entries must be positive: {max_entries}")
        if max_bytes is not None and max_bytes <= 0:
            raise ConfigurationError(f"max_bytes must be positive: {max_bytes}")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.memory_entries = memory_entries
        self.memory_bytes = memory_bytes
        self._memory: OrderedDict[str, Artifact] = OrderedDict()
        self._memory_used = 0
        self._stats: dict = {"hits": 0, "misses": 0, "puts": 0,
                             "evictions": 0, "stages": {}}
        if self.cache_dir is not None:
            self._objects_dir.mkdir(parents=True, exist_ok=True)
            self._sweep_orphans()
            self._load_stats()

    def _sweep_orphans(self) -> None:
        """Remove temp files a killed process left behind mid-write."""
        assert self.cache_dir is not None
        for directory in (self.cache_dir, self._objects_dir):
            for orphan in directory.glob("*.tmp"):
                try:
                    orphan.unlink()
                except OSError:
                    pass

    # -- paths -------------------------------------------------------------

    @property
    def _objects_dir(self) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / "objects"

    @property
    def _stats_path(self) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / "stats.json"

    def _object_path(self, key: str) -> Path:
        return self._objects_dir / f"{key}.npz"

    # -- stats -------------------------------------------------------------

    def _load_stats(self) -> None:
        try:
            loaded = json.loads(self._stats_path.read_text())
        except (OSError, ValueError):
            return
        if isinstance(loaded, dict):
            for field_name in ("hits", "misses", "puts", "evictions"):
                if isinstance(loaded.get(field_name), int):
                    self._stats[field_name] = loaded[field_name]
            if isinstance(loaded.get("stages"), dict):
                self._stats["stages"] = loaded["stages"]

    def _save_stats(self) -> None:
        if self.cache_dir is None:
            return
        fd, tmp_name = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        with os.fdopen(fd, "w") as handle:
            json.dump(self._stats, handle, indent=1)
        os.replace(tmp_name, self._stats_path)

    def _record(self, event: str, stage: str | None) -> None:
        self._stats[event] += 1
        if stage is not None:
            per = self._stats["stages"].setdefault(
                stage, {"hits": 0, "misses": 0, "puts": 0}
            )
            if event in per:
                per[event] += 1
        self._save_stats()

    def stats(self) -> dict:
        """Cumulative counters plus current disk occupancy."""
        out = {
            "hits": self._stats["hits"],
            "misses": self._stats["misses"],
            "puts": self._stats["puts"],
            "evictions": self._stats["evictions"],
            "stages": {k: dict(v) for k, v in self._stats["stages"].items()},
            "memory_entries": len(self._memory),
            "disk_entries": 0,
            "disk_bytes": 0,
        }
        for _, size, _ in self._disk_listing():
            out["disk_entries"] += 1
            out["disk_bytes"] += size
        return out

    # -- core operations ---------------------------------------------------

    def get(self, key: str, stage: str | None = None) -> Artifact | None:
        """Look ``key`` up in memory, then on disk; ``None`` on miss."""
        artifact = self._memory.get(key)
        if artifact is not None:
            self._memory.move_to_end(key)
            self._record("hits", stage)
            return artifact
        if self.cache_dir is not None:
            path = self._object_path(key)
            if path.exists():
                try:
                    meta, arrays = read_archive(path)
                except (ConfigurationError, OSError, ValueError):
                    # A corrupt archive (interrupted disk, manual edit) is
                    # treated as a miss and recomputed over.
                    path.unlink(missing_ok=True)
                else:
                    os.utime(path)  # refresh the LRU clock
                    artifact = Artifact(key=key, meta=meta, arrays=arrays)
                    self._remember(artifact)
                    self._record("hits", stage)
                    return artifact
        self._record("misses", stage)
        return None

    def put(
        self,
        key: str,
        meta: dict,
        arrays: dict[str, np.ndarray] | None = None,
        stage: str | None = None,
    ) -> Artifact:
        """Store an artifact under ``key`` and return it."""
        artifact = Artifact(key=key, meta=dict(meta), arrays=dict(arrays or {}))
        self._remember(artifact)
        if self.cache_dir is not None:
            write_archive(self._object_path(key), artifact.meta, artifact.arrays)
            self._evict()
        self._record("puts", stage)
        return artifact

    def contains(self, key: str) -> bool:
        """Presence check that does not touch the stats or the LRU clock."""
        if key in self._memory:
            return True
        return (self.cache_dir is not None
                and self._object_path(key).exists())

    def clear(self) -> int:
        """Drop every artifact (memory + disk); returns the number removed."""
        keys = set(self._memory)
        self._memory.clear()
        self._memory_used = 0
        if self.cache_dir is not None:
            self._sweep_orphans()
            for path, _, _ in self._disk_listing():
                keys.add(path.stem)
                path.unlink(missing_ok=True)
        return len(keys)

    # -- memory / disk bookkeeping ----------------------------------------

    @staticmethod
    def _artifact_bytes(artifact: Artifact) -> int:
        return sum(a.nbytes for a in artifact.arrays.values())

    def _remember(self, artifact: Artifact) -> None:
        size = self._artifact_bytes(artifact)
        if self.memory_entries == 0 or size > self.memory_bytes:
            return  # oversized artifacts are served from disk only
        old = self._memory.pop(artifact.key, None)
        if old is not None:
            self._memory_used -= self._artifact_bytes(old)
        self._memory[artifact.key] = artifact
        self._memory_used += size
        while self._memory and (len(self._memory) > self.memory_entries
                                or self._memory_used > self.memory_bytes):
            _, evicted = self._memory.popitem(last=False)
            self._memory_used -= self._artifact_bytes(evicted)

    def _disk_listing(self) -> list[tuple[Path, int, float]]:
        """``(path, bytes, mtime)`` for every on-disk artifact."""
        if self.cache_dir is None:
            return []
        out = []
        for path in self._objects_dir.glob("*.npz"):
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append((path, stat.st_size, stat.st_mtime))
        return out

    def _evict(self) -> None:
        if self.max_entries is None and self.max_bytes is None:
            return
        listing = sorted(self._disk_listing(), key=lambda item: item[2])
        total_bytes = sum(size for _, size, _ in listing)
        count = len(listing)
        for path, size, _ in listing:
            over_entries = (self.max_entries is not None
                            and count > self.max_entries)
            over_bytes = (self.max_bytes is not None
                          and total_bytes > self.max_bytes)
            if not (over_entries or over_bytes):
                break
            path.unlink(missing_ok=True)
            dropped = self._memory.pop(path.stem, None)
            if dropped is not None:
                self._memory_used -= self._artifact_bytes(dropped)
            count -= 1
            total_bytes -= size
            self._stats["evictions"] += 1
        self._save_stats()
