"""Content-addressed artifact store backing the staged UHSCM pipeline.

Artifacts are ``(meta, arrays)`` pairs — a small JSON-able metadata dict
plus named numpy arrays — addressed by their stage fingerprint.  The store
is a bounded in-memory LRU over an optional on-disk layer:

- **memory**: an ``OrderedDict`` of the most recently used artifacts, so a
  sweep that re-reads the same Q matrix never touches disk;
- **disk** (when ``cache_dir`` is given): one ``.npz`` archive per artifact
  under ``<cache_dir>/objects/``, written atomically (tmp + rename) so a
  killed run never leaves a truncated artifact behind.  File mtimes double
  as the LRU clock; eviction removes the stalest archives once
  ``max_entries`` / ``max_bytes`` is exceeded.

Large artifacts additionally have a **raw** on-disk format — a
``<key>.raw/`` directory holding one ``.npy`` file per array plus a
``meta.json`` manifest — whose arrays come back from :meth:`ArtifactStore.get`
as read-only ``np.memmap`` views instead of heap copies, so K processes
reading the same artifact share one physical copy of the pages.  ``put``
routes an artifact to the raw format once its arrays reach
``mmap_threshold_bytes``; :class:`StreamingArtifactWriter` builds a raw
artifact array-by-array directly on disk so it never exists on the heap at
all.  Raw directories are written atomically too (tmp dir + rename) and
participate in the same LRU eviction.

Hit/miss/put/eviction counters are kept per stage and — with a disk layer —
persisted to ``<cache_dir>/stats.json`` after every event, so ``repro.cli
cache stats`` reports on runs that died mid-flight.  The stats file also
remembers which stage owns each key, which is what lets ``cache stats``
attribute on-disk bytes and evictions per stage.

The archive format (``__meta__`` JSON row + named arrays in one ``.npz``)
is shared with :mod:`repro.core.persistence`, which is a thin client of
:func:`write_archive` / :func:`read_archive`.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError

_META_KEY = "__meta__"

#: Manifest filename inside a raw-format artifact directory.
_RAW_MANIFEST = "meta.json"


# -- archive (de)serialization ------------------------------------------------


def write_archive(
    path: str | Path, meta: dict, arrays: dict[str, np.ndarray]
) -> Path:
    """Atomically write ``meta`` + ``arrays`` as one ``.npz`` archive."""
    path = Path(path)
    if _META_KEY in arrays:
        raise ConfigurationError(f"array name {_META_KEY!r} is reserved")
    payload = {
        _META_KEY: np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
    }
    payload.update(arrays)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return path


def read_archive(path: str | Path) -> tuple[dict, dict[str, np.ndarray]]:
    """Read an archive written by :func:`write_archive`."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no such archive: {path}")
    with np.load(path) as archive:
        if _META_KEY not in archive.files:
            raise ConfigurationError(f"not a repro archive (no metadata): {path}")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        arrays = {k: archive[k] for k in archive.files if k != _META_KEY}
    return meta, arrays


def write_raw_archive(
    path: str | Path, meta: dict, arrays: dict[str, np.ndarray]
) -> Path:
    """Atomically write ``meta`` + ``arrays`` as a raw-format directory.

    Layout: one ``.npy`` file per array plus a ``meta.json`` manifest
    mapping array names (which may contain characters illegal in
    filenames, e.g. ``param/w0``) to their files.  The directory is
    assembled under a ``.tmp`` sibling and renamed into place, so readers
    never observe a half-written artifact.
    """
    path = Path(path)
    tmp = Path(tempfile.mkdtemp(dir=path.parent, prefix=path.name + ".",
                                suffix=".tmp"))
    try:
        files = {name: f"a{i}.npy" for i, name in enumerate(sorted(arrays))}
        for name, filename in files.items():
            np.save(tmp / filename, np.asarray(arrays[name]))
        (tmp / _RAW_MANIFEST).write_text(
            json.dumps({"meta": meta, "arrays": files})
        )
        if path.exists():
            shutil.rmtree(path)
        os.rename(tmp, path)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return path


def read_raw_archive(
    path: str | Path, mmap: bool = True
) -> tuple[dict, dict[str, np.ndarray]]:
    """Read a raw-format artifact directory.

    With ``mmap=True`` (the default) every array comes back as a read-only
    ``np.memmap`` view — the page cache, not the heap, holds the data, and
    concurrent readers share one physical copy.
    """
    path = Path(path)
    manifest_path = path / _RAW_MANIFEST
    if not manifest_path.exists():
        raise ConfigurationError(f"not a raw repro artifact: {path}")
    manifest = json.loads(manifest_path.read_text())
    arrays = {
        name: np.load(path / filename, mmap_mode="r" if mmap else None)
        for name, filename in manifest["arrays"].items()
    }
    return manifest["meta"], arrays


# -- the store ----------------------------------------------------------------


@dataclass
class Artifact:
    """One cached stage output: JSON metadata plus named arrays."""

    key: str
    meta: dict
    arrays: dict[str, np.ndarray] = field(default_factory=dict)


class ArtifactStore:
    """Bounded, content-addressed cache of pipeline stage outputs.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk layer; ``None`` keeps the store purely
        in-memory (artifacts die with the process, stats are not persisted).
    max_entries / max_bytes:
        Disk-layer bounds; the least recently used archives are evicted
        once either is exceeded.  ``None`` disables the bound.
    memory_entries / memory_bytes:
        Bounds of the in-memory LRU layer (always bounded); an artifact
        whose arrays alone exceed ``memory_bytes`` is served from disk
        only, so table-scale Q matrices do not stay pinned in RAM.
    mmap_threshold_bytes:
        Out-of-core policy (requires ``cache_dir``): an artifact whose
        arrays total at least this many bytes is written in the raw
        format and read back as ``np.memmap`` views instead of heap
        copies.  ``None`` (default) keeps every put in the ``.npz``
        format; ``0`` routes everything through the raw format.  Raw
        artifacts already on disk are always memmapped on read,
        whatever the threshold — the format, not the policy, decides
        residency.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        memory_entries: int = 64,
        memory_bytes: int = 256 * 1024 * 1024,
        mmap_threshold_bytes: int | None = None,
    ) -> None:
        if mmap_threshold_bytes is not None:
            if mmap_threshold_bytes < 0:
                raise ConfigurationError(
                    f"mmap_threshold_bytes must be >= 0: {mmap_threshold_bytes}"
                )
            if cache_dir is None:
                raise ConfigurationError(
                    "mmap_threshold_bytes requires a cache_dir (memmapped "
                    "artifacts live on disk)"
                )
        if memory_entries < 0:
            raise ConfigurationError(
                f"memory_entries must be >= 0: {memory_entries}"
            )
        if memory_bytes < 0:
            raise ConfigurationError(
                f"memory_bytes must be >= 0: {memory_bytes}"
            )
        if max_entries is not None and max_entries <= 0:
            raise ConfigurationError(f"max_entries must be positive: {max_entries}")
        if max_bytes is not None and max_bytes <= 0:
            raise ConfigurationError(f"max_bytes must be positive: {max_bytes}")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.memory_entries = memory_entries
        self.memory_bytes = memory_bytes
        self.mmap_threshold_bytes = mmap_threshold_bytes
        self._memory: OrderedDict[str, Artifact] = OrderedDict()
        self._memory_used = 0
        self._stats: dict = {"hits": 0, "misses": 0, "puts": 0,
                             "evictions": 0, "stages": {}, "key_stages": {}}
        if self.cache_dir is not None:
            self._objects_dir.mkdir(parents=True, exist_ok=True)
            self._sweep_orphans()
            self._load_stats()

    def _sweep_orphans(self) -> None:
        """Remove temp files/dirs a killed process left behind mid-write."""
        assert self.cache_dir is not None
        for directory in (self.cache_dir, self._objects_dir):
            for orphan in directory.glob("*.tmp"):
                try:
                    if orphan.is_dir():
                        shutil.rmtree(orphan, ignore_errors=True)
                    else:
                        orphan.unlink()
                except OSError:
                    pass

    # -- paths -------------------------------------------------------------

    @property
    def _objects_dir(self) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / "objects"

    @property
    def _stats_path(self) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / "stats.json"

    def _object_path(self, key: str) -> Path:
        return self._objects_dir / f"{key}.npz"

    def _raw_path(self, key: str) -> Path:
        return self._objects_dir / f"{key}.raw"

    # -- stats -------------------------------------------------------------

    def _load_stats(self) -> None:
        try:
            loaded = json.loads(self._stats_path.read_text())
        except (OSError, ValueError):
            return
        if isinstance(loaded, dict):
            for field_name in ("hits", "misses", "puts", "evictions"):
                if isinstance(loaded.get(field_name), int):
                    self._stats[field_name] = loaded[field_name]
            if isinstance(loaded.get("stages"), dict):
                self._stats["stages"] = loaded["stages"]
            if isinstance(loaded.get("key_stages"), dict):
                self._stats["key_stages"] = loaded["key_stages"]

    def _save_stats(self) -> None:
        if self.cache_dir is None:
            return
        fd, tmp_name = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        with os.fdopen(fd, "w") as handle:
            json.dump(self._stats, handle, indent=1)
        os.replace(tmp_name, self._stats_path)

    def _stage_counters(self, stage: str) -> dict:
        per = self._stats["stages"].setdefault(
            stage, {"hits": 0, "misses": 0, "puts": 0}
        )
        # Stats files written before per-stage eviction tracking carry no
        # "evictions" key; backfill so increments never KeyError.
        per.setdefault("evictions", 0)
        return per

    def _record(self, event: str, stage: str | None) -> None:
        self._stats[event] += 1
        if stage is not None:
            per = self._stage_counters(stage)
            if event in per:
                per[event] += 1
        self._save_stats()

    def _note_owner(self, key: str, stage: str | None) -> None:
        """Remember which stage owns ``key`` (for per-stage disk stats)."""
        if stage is not None:
            self._stats["key_stages"][key] = stage

    def stats(self) -> dict:
        """Cumulative counters plus current disk occupancy.

        Per-stage entries carry their hit/miss/put/eviction counters plus
        the current ``disk_entries`` / ``disk_bytes`` attributable to keys
        that stage put (keys stored without a stage label fall outside the
        per-stage disk split but still count in the totals).
        """
        stages = {
            name: {"evictions": 0, **dict(counts)}
            for name, counts in self._stats["stages"].items()
        }
        for per in stages.values():
            per.setdefault("disk_entries", 0)
            per.setdefault("disk_bytes", 0)
        out = {
            "hits": self._stats["hits"],
            "misses": self._stats["misses"],
            "puts": self._stats["puts"],
            "evictions": self._stats["evictions"],
            "stages": stages,
            "memory_entries": len(self._memory),
            "disk_entries": 0,
            "disk_bytes": 0,
        }
        key_stages = self._stats["key_stages"]
        for path, size, _ in self._disk_listing():
            out["disk_entries"] += 1
            out["disk_bytes"] += size
            stage = key_stages.get(path.stem)
            if stage is not None and stage in stages:
                stages[stage]["disk_entries"] += 1
                stages[stage]["disk_bytes"] += size
        return out

    # -- core operations ---------------------------------------------------

    def get(self, key: str, stage: str | None = None) -> Artifact | None:
        """Look ``key`` up in memory, then on disk; ``None`` on miss.

        A raw-format hit returns read-only ``np.memmap`` array views (disk
        stays the residence of the data); an ``.npz`` hit returns heap
        arrays exactly as before.
        """
        artifact = self._memory.get(key)
        if artifact is not None:
            self._memory.move_to_end(key)
            self._record("hits", stage)
            return artifact
        if self.cache_dir is not None:
            for path, reader in (
                (self._raw_path(key), read_raw_archive),
                (self._object_path(key), read_archive),
            ):
                if not path.exists():
                    continue
                try:
                    meta, arrays = reader(path)
                except (ConfigurationError, OSError, ValueError):
                    # A corrupt artifact (interrupted disk, manual edit) is
                    # treated as a miss and recomputed over.
                    self._remove_entry(path)
                    continue
                os.utime(path)  # refresh the LRU clock
                artifact = Artifact(key=key, meta=meta, arrays=arrays)
                self._remember(artifact)
                self._record("hits", stage)
                return artifact
        self._record("misses", stage)
        return None

    def put(
        self,
        key: str,
        meta: dict,
        arrays: dict[str, np.ndarray] | None = None,
        stage: str | None = None,
    ) -> Artifact:
        """Store an artifact under ``key`` and return it.

        With ``mmap_threshold_bytes`` set, an artifact at or above the
        threshold is written in the raw format and the returned artifact's
        arrays are re-opened as read-only memmaps — the heap copy the
        caller built is free to die.  Below the threshold (or with the
        policy off) the ``.npz`` path is byte-for-byte the old behavior.
        """
        artifact = Artifact(key=key, meta=dict(meta), arrays=dict(arrays or {}))
        if self.cache_dir is not None:
            use_raw = (
                self.mmap_threshold_bytes is not None
                and self._artifact_bytes(artifact)
                >= self.mmap_threshold_bytes
            )
            if use_raw:
                write_raw_archive(self._raw_path(key), artifact.meta,
                                  artifact.arrays)
                self._object_path(key).unlink(missing_ok=True)
                meta_back, arrays_back = read_raw_archive(self._raw_path(key))
                artifact = Artifact(key=key, meta=meta_back,
                                    arrays=arrays_back)
            else:
                write_archive(self._object_path(key), artifact.meta,
                              artifact.arrays)
                if self._raw_path(key).exists():
                    shutil.rmtree(self._raw_path(key), ignore_errors=True)
            self._note_owner(key, stage)
            self._evict()
        self._remember(artifact)
        self._record("puts", stage)
        return artifact

    def streaming_writer(
        self, key: str, stage: str | None = None
    ) -> "StreamingArtifactWriter":
        """Open a :class:`StreamingArtifactWriter` building ``key`` on disk."""
        if self.cache_dir is None:
            raise ConfigurationError(
                "streaming writes need a cache_dir-backed store"
            )
        return StreamingArtifactWriter(self, key, stage=stage)

    def contains(self, key: str) -> bool:
        """Presence check that does not touch the stats or the LRU clock."""
        if key in self._memory:
            return True
        return (self.cache_dir is not None
                and (self._object_path(key).exists()
                     or self._raw_path(key).exists()))

    def clear(self) -> int:
        """Drop every artifact (memory + disk); returns the number removed."""
        keys = set(self._memory)
        self._memory.clear()
        self._memory_used = 0
        if self.cache_dir is not None:
            self._sweep_orphans()
            for path, _, _ in self._disk_listing():
                keys.add(path.stem)
                self._remove_entry(path)
            self._stats["key_stages"].clear()
            self._save_stats()
        return len(keys)

    # -- memory / disk bookkeeping ----------------------------------------

    @staticmethod
    def _artifact_bytes(artifact: Artifact) -> int:
        return sum(a.nbytes for a in artifact.arrays.values())

    def _remember(self, artifact: Artifact) -> None:
        if any(isinstance(a, np.memmap) for a in artifact.arrays.values()):
            return  # memmapped arrays are already shared; never pin copies
        size = self._artifact_bytes(artifact)
        if self.memory_entries == 0 or size > self.memory_bytes:
            return  # oversized artifacts are served from disk only
        old = self._memory.pop(artifact.key, None)
        if old is not None:
            self._memory_used -= self._artifact_bytes(old)
        self._memory[artifact.key] = artifact
        self._memory_used += size
        while self._memory and (len(self._memory) > self.memory_entries
                                or self._memory_used > self.memory_bytes):
            _, evicted = self._memory.popitem(last=False)
            self._memory_used -= self._artifact_bytes(evicted)

    @staticmethod
    def _remove_entry(path: Path) -> None:
        """Delete one on-disk artifact, whichever format it is."""
        if path.is_dir():
            shutil.rmtree(path, ignore_errors=True)
        else:
            path.unlink(missing_ok=True)

    def _disk_listing(self) -> list[tuple[Path, int, float]]:
        """``(path, bytes, mtime)`` for every on-disk artifact.

        Raw-format directories report the sum of their file sizes; their
        mtime is the directory's own, refreshed by ``get`` like any
        archive's.
        """
        if self.cache_dir is None:
            return []
        out = []
        for path in self._objects_dir.iterdir():
            try:
                if path.suffix == ".npz" and path.is_file():
                    stat = path.stat()
                    out.append((path, stat.st_size, stat.st_mtime))
                elif path.suffix == ".raw" and path.is_dir():
                    size = sum(
                        member.stat().st_size
                        for member in path.iterdir()
                        if member.is_file()
                    )
                    out.append((path, size, path.stat().st_mtime))
            except OSError:
                continue
        return out

    def _evict(self) -> None:
        if self.max_entries is None and self.max_bytes is None:
            return
        # (mtime, key) — the key tie-break makes same-second writes (coarse
        # filesystem timestamps) evict in a stable, reproducible order.
        listing = sorted(self._disk_listing(),
                         key=lambda item: (item[2], item[0].stem))
        total_bytes = sum(size for _, size, _ in listing)
        count = len(listing)
        for path, size, _ in listing:
            over_entries = (self.max_entries is not None
                            and count > self.max_entries)
            over_bytes = (self.max_bytes is not None
                          and total_bytes > self.max_bytes)
            if not (over_entries or over_bytes):
                break
            self._remove_entry(path)
            dropped = self._memory.pop(path.stem, None)
            if dropped is not None:
                self._memory_used -= self._artifact_bytes(dropped)
            count -= 1
            total_bytes -= size
            self._stats["evictions"] += 1
            stage = self._stats["key_stages"].get(path.stem)
            if stage is not None:
                self._stage_counters(stage)["evictions"] += 1
        self._save_stats()


class StreamingArtifactWriter:
    """Build one raw-format artifact array-by-array directly on disk.

    Obtained from :meth:`ArtifactStore.streaming_writer`.  :meth:`create`
    hands back a writable memmap a builder fills block by block (the full
    array never exists on the heap); :meth:`commit` writes the manifest and
    atomically renames the assembly directory into the store's raw layout,
    returning the committed artifact with fresh read-only memmap views.
    :meth:`abort` discards the assembly; an uncommitted directory left by a
    crash is swept as a ``.tmp`` orphan on the next store construction.
    """

    def __init__(
        self, store: ArtifactStore, key: str, stage: str | None = None
    ) -> None:
        self._store = store
        self.key = key
        self._stage = stage
        self._tmp = Path(tempfile.mkdtemp(
            dir=store._objects_dir, prefix=f"{key}.raw.", suffix=".tmp"
        ))
        self._files: dict[str, str] = {}
        self._maps: list[np.memmap] = []
        self._done = False

    def create(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype | str,
    ) -> np.memmap:
        """Allocate array ``name`` on disk; returns a writable memmap."""
        if self._done:
            raise ConfigurationError("writer already committed or aborted")
        if name in self._files:
            raise ConfigurationError(f"array {name!r} already created")
        filename = f"a{len(self._files)}.npy"
        mapped = np.lib.format.open_memmap(
            self._tmp / filename, mode="w+", dtype=np.dtype(dtype),
            shape=tuple(int(s) for s in shape),
        )
        self._files[name] = filename
        self._maps.append(mapped)
        return mapped

    def commit(self, meta: dict) -> Artifact:
        """Publish the assembled arrays under the store's raw layout."""
        if self._done:
            raise ConfigurationError("writer already committed or aborted")
        for mapped in self._maps:
            mapped.flush()
        self._maps.clear()  # drop writable handles before re-opening r/o
        (self._tmp / _RAW_MANIFEST).write_text(
            json.dumps({"meta": dict(meta), "arrays": self._files})
        )
        final = self._store._raw_path(self.key)
        if final.exists():
            shutil.rmtree(final)
        os.rename(self._tmp, final)
        self._done = True
        self._store._object_path(self.key).unlink(missing_ok=True)
        meta_back, arrays = read_raw_archive(final)
        self._store._note_owner(self.key, self._stage)
        self._store._evict()
        self._store._record("puts", self._stage)
        return Artifact(key=self.key, meta=meta_back, arrays=arrays)

    def abort(self) -> None:
        """Discard the assembly directory (safe to call repeatedly)."""
        if not self._done:
            self._maps.clear()
            shutil.rmtree(self._tmp, ignore_errors=True)
            self._done = True
