"""Content-addressed artifact store backing the staged UHSCM pipeline.

Artifacts are ``(meta, arrays)`` pairs — a small JSON-able metadata dict
plus named numpy arrays — addressed by their stage fingerprint.  The store
is a bounded in-memory LRU over an optional on-disk layer:

- **memory**: an ``OrderedDict`` of the most recently used artifacts, so a
  sweep that re-reads the same Q matrix never touches disk;
- **disk** (when ``cache_dir`` is given): one ``.npz`` archive per artifact
  under ``<cache_dir>/objects/``, written atomically (tmp + rename) so a
  killed run never leaves a truncated artifact behind.  File mtimes double
  as the LRU clock; eviction removes the stalest archives once
  ``max_entries`` / ``max_bytes`` is exceeded.

Large artifacts additionally have a **raw** on-disk format — a
``<key>.raw/`` directory holding one ``.npy`` file per array plus a
``meta.json`` manifest — whose arrays come back from :meth:`ArtifactStore.get`
as read-only ``np.memmap`` views instead of heap copies, so K processes
reading the same artifact share one physical copy of the pages.  ``put``
routes an artifact to the raw format once its arrays reach
``mmap_threshold_bytes``; :class:`StreamingArtifactWriter` builds a raw
artifact array-by-array directly on disk so it never exists on the heap at
all.  Raw directories are written atomically too (tmp dir + rename) and
participate in the same LRU eviction.

Hit/miss/put/eviction counters are kept per stage and — with a disk layer —
persisted to ``<cache_dir>/stats.json`` after every event, so ``repro.cli
cache stats`` reports on runs that died mid-flight.  The stats file also
remembers which stage owns each key, which is what lets ``cache stats``
attribute on-disk bytes and evictions per stage.

**Integrity & fault tolerance** (PR 7): every artifact records a sha256
content digest at ``put``/``commit`` time (inside the ``.npz`` metadata
row, or per-member in the raw manifest) and is verified on its first disk
read per store instance; a mismatch — or any other unreadable entry —
raises internally as :class:`~repro.errors.ArtifactCorruptionError` and
the entry is **quarantined** to ``<cache_dir>/quarantine/`` (never
silently deleted) before the store reports a miss, so the pipeline
rebuilds exactly once and the bad bytes stay available for a post-mortem.
Disk reads and writes run under an injectable
:class:`~repro.utils.retry.RetryPolicy` (transient I/O errors retry with
backoff; an exhausted read degrades to a miss, an exhausted write
degrades to serving the artifact from memory only), and every disk
operation consults the store's :class:`~repro.utils.faults.FaultInjector`
at the ``store.read`` / ``store.write`` points so the whole ladder is
testable deterministically.  ``corruptions`` / ``quarantined`` /
``retries`` / ``read_failures`` / ``put_failures`` counters persist next
to the hit/miss ones.

The archive format (``__meta__`` JSON row + named arrays in one ``.npz``)
is shared with :mod:`repro.core.persistence`, which is a thin client of
:func:`write_archive` / :func:`read_archive`.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import shutil
import tempfile
import zipfile
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import (
    ArtifactCorruptionError,
    ConfigurationError,
    TransientError,
)
from repro.utils.faults import NULL_INJECTOR, FaultInjector
from repro.utils.retry import RetryPolicy

_LOG = logging.getLogger(__name__)

_META_KEY = "__meta__"

#: Manifest filename inside a raw-format artifact directory.
_RAW_MANIFEST = "meta.json"

#: Reserved metadata field carrying the ``.npz`` content digest.
_DIGEST_KEY = "__digest__"

#: Exceptions meaning "the bytes on disk are not a valid artifact" — the
#: quarantine path.  Transient I/O errors (``OSError``) are retried, not
#: quarantined; anything here is deterministic badness.
_CORRUPT_ERRORS = (
    ArtifactCorruptionError,
    ConfigurationError,
    ValueError,  # bad .npy headers, malformed JSON, np.load refusals
    KeyError,  # missing archive members
    EOFError,
    zipfile.BadZipFile,
    zlib.error,
)


def _hash_array(digest, array: np.ndarray) -> None:
    """Fold one array's dtype, shape, and raw bytes into ``digest``.

    Contiguous arrays (including memmaps) hash through a zero-copy
    memoryview, so digesting an out-of-core artifact streams pages without
    materializing a heap copy.
    """
    array = np.asarray(array)
    digest.update(str(array.dtype).encode())
    digest.update(repr(tuple(array.shape)).encode())
    if array.size == 0:
        return
    if not array.flags.c_contiguous:
        array = np.ascontiguousarray(array)
    digest.update(memoryview(array.reshape(-1)))


def content_digest(meta: dict, arrays: dict[str, np.ndarray]) -> str:
    """sha256 over an artifact's metadata and named arrays."""
    digest = hashlib.sha256()
    digest.update(json.dumps(meta, sort_keys=True).encode("utf-8"))
    for name in sorted(arrays):
        digest.update(name.encode("utf-8"))
        _hash_array(digest, arrays[name])
    return digest.hexdigest()


def _member_digest(array: np.ndarray) -> str:
    """sha256 of one raw-format member array."""
    digest = hashlib.sha256()
    _hash_array(digest, array)
    return digest.hexdigest()


# -- archive (de)serialization ------------------------------------------------


def write_archive(
    path: str | Path, meta: dict, arrays: dict[str, np.ndarray]
) -> Path:
    """Atomically write ``meta`` + ``arrays`` as one ``.npz`` archive.

    A sha256 content digest over the metadata and arrays rides along in
    the metadata row under a reserved field; :func:`read_archive` verifies
    it so silent bit rot surfaces as
    :class:`~repro.errors.ArtifactCorruptionError` instead of bad science.
    """
    path = Path(path)
    if _META_KEY in arrays:
        raise ConfigurationError(f"array name {_META_KEY!r} is reserved")
    if _DIGEST_KEY in meta:
        raise ConfigurationError(f"meta field {_DIGEST_KEY!r} is reserved")
    stamped = dict(meta)
    stamped[_DIGEST_KEY] = content_digest(meta, arrays)
    payload = {
        _META_KEY: np.frombuffer(
            json.dumps(stamped).encode("utf-8"), dtype=np.uint8
        )
    }
    payload.update(arrays)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return path


def read_archive(
    path: str | Path, verify: bool = True
) -> tuple[dict, dict[str, np.ndarray]]:
    """Read an archive written by :func:`write_archive`.

    With ``verify=True`` (the default) the embedded content digest — when
    present; archives from before the integrity layer carry none — is
    recomputed over the loaded payload and a mismatch raises
    :class:`~repro.errors.ArtifactCorruptionError`.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no such archive: {path}")
    with np.load(path) as archive:
        if _META_KEY not in archive.files:
            raise ConfigurationError(f"not a repro archive (no metadata): {path}")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        arrays = {k: archive[k] for k in archive.files if k != _META_KEY}
    recorded = meta.pop(_DIGEST_KEY, None)
    if verify and recorded is not None:
        actual = content_digest(meta, arrays)
        if actual != recorded:
            raise ArtifactCorruptionError(
                f"archive {path} failed its integrity check: recorded "
                f"digest {recorded[:12]}…, recomputed {actual[:12]}…"
            )
    return meta, arrays


def write_raw_archive(
    path: str | Path, meta: dict, arrays: dict[str, np.ndarray]
) -> Path:
    """Atomically write ``meta`` + ``arrays`` as a raw-format directory.

    Layout: one ``.npy`` file per array plus a ``meta.json`` manifest
    mapping array names (which may contain characters illegal in
    filenames, e.g. ``param/w0``) to their files.  The directory is
    assembled under a ``.tmp`` sibling and renamed into place, so readers
    never observe a half-written artifact.
    """
    path = Path(path)
    tmp = Path(tempfile.mkdtemp(dir=path.parent, prefix=path.name + ".",
                                suffix=".tmp"))
    try:
        files = {name: f"a{i}.npy" for i, name in enumerate(sorted(arrays))}
        digests = {}
        for name, filename in files.items():
            array = np.asarray(arrays[name])
            np.save(tmp / filename, array)
            digests[name] = _member_digest(array)
        (tmp / _RAW_MANIFEST).write_text(
            json.dumps({"meta": meta, "arrays": files, "digests": digests})
        )
        if path.exists():
            shutil.rmtree(path)
        os.rename(tmp, path)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return path


def read_raw_archive(
    path: str | Path, mmap: bool = True, verify: bool = True
) -> tuple[dict, dict[str, np.ndarray]]:
    """Read a raw-format artifact directory.

    With ``mmap=True`` (the default) every array comes back as a read-only
    ``np.memmap`` view — the page cache, not the heap, holds the data, and
    concurrent readers share one physical copy.  With ``verify=True`` each
    member whose digest the manifest records (manifests from before the
    integrity layer record none) is re-hashed — a streaming pass through
    the memmap, no heap copy — and a mismatch raises
    :class:`~repro.errors.ArtifactCorruptionError`.
    """
    path = Path(path)
    manifest_path = path / _RAW_MANIFEST
    if not manifest_path.exists():
        raise ConfigurationError(f"not a raw repro artifact: {path}")
    manifest = json.loads(manifest_path.read_text())
    arrays = {
        name: np.load(path / filename, mmap_mode="r" if mmap else None)
        for name, filename in manifest["arrays"].items()
    }
    if verify:
        digests = manifest.get("digests", {})
        for name, recorded in digests.items():
            actual = _member_digest(arrays[name])
            if actual != recorded:
                raise ArtifactCorruptionError(
                    f"raw artifact member {name!r} in {path} failed its "
                    f"integrity check: recorded digest {recorded[:12]}…, "
                    f"recomputed {actual[:12]}…"
                )
    return manifest["meta"], arrays


# -- the store ----------------------------------------------------------------


@dataclass
class Artifact:
    """One cached stage output: JSON metadata plus named arrays."""

    key: str
    meta: dict
    arrays: dict[str, np.ndarray] = field(default_factory=dict)


class ArtifactStore:
    """Bounded, content-addressed cache of pipeline stage outputs.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk layer; ``None`` keeps the store purely
        in-memory (artifacts die with the process, stats are not persisted).
    max_entries / max_bytes:
        Disk-layer bounds; the least recently used archives are evicted
        once either is exceeded.  ``None`` disables the bound.
    memory_entries / memory_bytes:
        Bounds of the in-memory LRU layer (always bounded); an artifact
        whose arrays alone exceed ``memory_bytes`` is served from disk
        only, so table-scale Q matrices do not stay pinned in RAM.
    mmap_threshold_bytes:
        Out-of-core policy (requires ``cache_dir``): an artifact whose
        arrays total at least this many bytes is written in the raw
        format and read back as ``np.memmap`` views instead of heap
        copies.  ``None`` (default) keeps every put in the ``.npz``
        format; ``0`` routes everything through the raw format.  Raw
        artifacts already on disk are always memmapped on read,
        whatever the threshold — the format, not the policy, decides
        residency.
    retry:
        :class:`~repro.utils.retry.RetryPolicy` wrapped around every disk
        read and write (default: 3 attempts, 10 ms exponential backoff).
        A read that stays transiently broken degrades to a miss; a write
        degrades to serving the artifact from memory only.  Corruption is
        never retried — it goes to quarantine.
    faults:
        :class:`~repro.utils.faults.FaultInjector` consulted at the
        ``store.read`` / ``store.write`` points; the shared disarmed
        :data:`~repro.utils.faults.NULL_INJECTOR` by default.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        memory_entries: int = 64,
        memory_bytes: int = 256 * 1024 * 1024,
        mmap_threshold_bytes: int | None = None,
        retry: RetryPolicy | None = None,
        faults: FaultInjector = NULL_INJECTOR,
    ) -> None:
        if mmap_threshold_bytes is not None:
            if mmap_threshold_bytes < 0:
                raise ConfigurationError(
                    f"mmap_threshold_bytes must be >= 0: {mmap_threshold_bytes}"
                )
            if cache_dir is None:
                raise ConfigurationError(
                    "mmap_threshold_bytes requires a cache_dir (memmapped "
                    "artifacts live on disk)"
                )
        if memory_entries < 0:
            raise ConfigurationError(
                f"memory_entries must be >= 0: {memory_entries}"
            )
        if memory_bytes < 0:
            raise ConfigurationError(
                f"memory_bytes must be >= 0: {memory_bytes}"
            )
        if max_entries is not None and max_entries <= 0:
            raise ConfigurationError(f"max_entries must be positive: {max_entries}")
        if max_bytes is not None and max_bytes <= 0:
            raise ConfigurationError(f"max_bytes must be positive: {max_bytes}")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.memory_entries = memory_entries
        self.memory_bytes = memory_bytes
        self.mmap_threshold_bytes = mmap_threshold_bytes
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults
        self._memory: OrderedDict[str, Artifact] = OrderedDict()
        self._memory_used = 0
        #: Keys whose on-disk bytes this store instance wrote or already
        #: digest-verified; later reads of the same key skip re-hashing.
        self._verified: set[str] = set()
        self._stats: dict = {"hits": 0, "misses": 0, "puts": 0,
                             "evictions": 0, "corruptions": 0,
                             "quarantined": 0, "retries": 0,
                             "read_failures": 0, "put_failures": 0,
                             "stages": {}, "key_stages": {}}
        if self.cache_dir is not None:
            self._objects_dir.mkdir(parents=True, exist_ok=True)
            self._sweep_orphans()
            self._load_stats()

    def _sweep_orphans(self) -> None:
        """Remove temp files/dirs a killed process left behind mid-write."""
        assert self.cache_dir is not None
        for directory in (self.cache_dir, self._objects_dir):
            for orphan in directory.glob("*.tmp"):
                try:
                    if orphan.is_dir():
                        shutil.rmtree(orphan, ignore_errors=True)
                    else:
                        orphan.unlink()
                except OSError:
                    pass

    # -- paths -------------------------------------------------------------

    @property
    def _objects_dir(self) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / "objects"

    @property
    def _stats_path(self) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / "stats.json"

    def _object_path(self, key: str) -> Path:
        return self._objects_dir / f"{key}.npz"

    def _raw_path(self, key: str) -> Path:
        return self._objects_dir / f"{key}.raw"

    @property
    def quarantine_dir(self) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / "quarantine"

    # -- stats -------------------------------------------------------------

    def _load_stats(self) -> None:
        try:
            loaded = json.loads(self._stats_path.read_text())
        except (OSError, ValueError):
            return
        if isinstance(loaded, dict):
            for field_name in ("hits", "misses", "puts", "evictions",
                               "corruptions", "quarantined", "retries",
                               "read_failures", "put_failures"):
                if isinstance(loaded.get(field_name), int):
                    self._stats[field_name] = loaded[field_name]
            if isinstance(loaded.get("stages"), dict):
                self._stats["stages"] = loaded["stages"]
            if isinstance(loaded.get("key_stages"), dict):
                self._stats["key_stages"] = loaded["key_stages"]

    def _save_stats(self) -> None:
        if self.cache_dir is None:
            return
        fd, tmp_name = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        with os.fdopen(fd, "w") as handle:
            json.dump(self._stats, handle, indent=1)
        os.replace(tmp_name, self._stats_path)

    def _stage_counters(self, stage: str) -> dict:
        per = self._stats["stages"].setdefault(
            stage, {"hits": 0, "misses": 0, "puts": 0}
        )
        # Stats files written before per-stage eviction/integrity tracking
        # carry no such keys; backfill so increments never KeyError.
        for field_name in ("evictions", "corruptions", "quarantined"):
            per.setdefault(field_name, 0)
        return per

    def _record(self, event: str, stage: str | None) -> None:
        self._stats[event] += 1
        if stage is not None:
            per = self._stage_counters(stage)
            if event in per:
                per[event] += 1
        self._save_stats()

    def _note_owner(self, key: str, stage: str | None) -> None:
        """Remember which stage owns ``key`` (for per-stage disk stats)."""
        if stage is not None:
            self._stats["key_stages"][key] = stage

    def stats(self) -> dict:
        """Cumulative counters plus current disk occupancy.

        Per-stage entries carry their hit/miss/put/eviction counters plus
        the current ``disk_entries`` / ``disk_bytes`` attributable to keys
        that stage put (keys stored without a stage label fall outside the
        per-stage disk split but still count in the totals).
        """
        stages = {
            name: {"evictions": 0, "corruptions": 0, "quarantined": 0,
                   **dict(counts)}
            for name, counts in self._stats["stages"].items()
        }
        for per in stages.values():
            per.setdefault("disk_entries", 0)
            per.setdefault("disk_bytes", 0)
        out = {
            "hits": self._stats["hits"],
            "misses": self._stats["misses"],
            "puts": self._stats["puts"],
            "evictions": self._stats["evictions"],
            "corruptions": self._stats["corruptions"],
            "quarantined": self._stats["quarantined"],
            "retries": self._stats["retries"],
            "read_failures": self._stats["read_failures"],
            "put_failures": self._stats["put_failures"],
            "stages": stages,
            "memory_entries": len(self._memory),
            "disk_entries": 0,
            "disk_bytes": 0,
            "quarantine_entries": 0,
            "quarantine_bytes": 0,
        }
        key_stages = self._stats["key_stages"]
        for path, size, _ in self._disk_listing():
            out["disk_entries"] += 1
            out["disk_bytes"] += size
            stage = key_stages.get(path.stem)
            if stage is not None and stage in stages:
                stages[stage]["disk_entries"] += 1
                stages[stage]["disk_bytes"] += size
        if self.cache_dir is not None and self.quarantine_dir.is_dir():
            for path in self.quarantine_dir.iterdir():
                try:
                    if path.is_dir():
                        size = sum(m.stat().st_size for m in path.iterdir()
                                   if m.is_file())
                    else:
                        size = path.stat().st_size
                except OSError:
                    continue
                out["quarantine_entries"] += 1
                out["quarantine_bytes"] += size
        return out

    # -- fault handling ----------------------------------------------------

    def _with_retry(self, fn, label: str):
        """Run one disk operation under the retry policy, counting retries."""
        before = self.retry.retries
        try:
            return self.retry.call(fn, label=label)
        finally:
            delta = self.retry.retries - before
            if delta:
                self._stats["retries"] += delta

    def _quarantine(
        self, path: Path, key: str, stage: str | None, exc: BaseException
    ) -> None:
        """Move a corrupt entry aside for post-mortem instead of deleting it."""
        assert self.cache_dir is not None
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        dest = self.quarantine_dir / path.name
        self._remove_entry(dest)  # an older quarantined copy gives way
        try:
            shutil.move(str(path), str(dest))
        except OSError:
            # Cross-device or permission trouble: removal is the fallback —
            # a corrupt artifact must never be served again.
            self._remove_entry(path)
        self._memory.pop(key, None)
        self._verified.discard(key)
        self._stats["corruptions"] += 1
        self._stats["quarantined"] += 1
        if stage is not None:
            per = self._stage_counters(stage)
            per["corruptions"] += 1
            per["quarantined"] += 1
        self._save_stats()
        _LOG.warning(
            "quarantined corrupt artifact %s -> %s (%s); it will be rebuilt",
            path.name, dest, exc,
        )

    # -- core operations ---------------------------------------------------

    def get(self, key: str, stage: str | None = None) -> Artifact | None:
        """Look ``key`` up in memory, then on disk; ``None`` on miss.

        A raw-format hit returns read-only ``np.memmap`` array views (disk
        stays the residence of the data); an ``.npz`` hit returns heap
        arrays exactly as before.  The first disk read of a key per store
        instance verifies its recorded sha256 digest; a corrupt entry
        (digest mismatch, truncated archive, unreadable manifest) is
        quarantined under ``<cache_dir>/quarantine/`` and reported as a
        miss, and a transiently failing read retries under the store's
        policy before likewise degrading to a miss.
        """
        artifact = self._memory.get(key)
        if artifact is not None:
            self._memory.move_to_end(key)
            self._record("hits", stage)
            return artifact
        if self.cache_dir is not None:
            for path, reader in (
                (self._raw_path(key), read_raw_archive),
                (self._object_path(key), read_archive),
            ):
                if not path.exists():
                    continue
                verify = key not in self._verified

                def attempt():
                    self.faults.check("store.read", key=key)
                    if reader is read_raw_archive:
                        return read_raw_archive(path, verify=verify)
                    return read_archive(path, verify=verify)

                try:
                    meta, arrays = self._with_retry(
                        attempt, label=f"read {key[:12]}"
                    )
                except (TransientError, OSError) as exc:
                    # The bytes may be fine — the read path is not.  Do not
                    # quarantine; degrade to a miss so the caller rebuilds.
                    self._stats["read_failures"] += 1
                    self._save_stats()
                    _LOG.warning("read of artifact %s kept failing (%s); "
                                 "treating as a miss", path.name, exc)
                    continue
                except _CORRUPT_ERRORS as exc:
                    self._quarantine(path, key, stage, exc)
                    continue
                self._verified.add(key)
                os.utime(path)  # refresh the LRU clock
                artifact = Artifact(key=key, meta=meta, arrays=arrays)
                self._remember(artifact)
                self._record("hits", stage)
                return artifact
        self._record("misses", stage)
        return None

    def put(
        self,
        key: str,
        meta: dict,
        arrays: dict[str, np.ndarray] | None = None,
        stage: str | None = None,
    ) -> Artifact:
        """Store an artifact under ``key`` and return it.

        With ``mmap_threshold_bytes`` set, an artifact at or above the
        threshold is written in the raw format and the returned artifact's
        arrays are re-opened as read-only memmaps — the heap copy the
        caller built is free to die.  Below the threshold (or with the
        policy off) the ``.npz`` path is byte-for-byte the old behavior.

        A transiently failing write retries under the store's policy; if
        it stays broken the artifact is served from memory only for this
        process (``put_failures`` counts the event) rather than failing
        the pipeline run that just computed it.
        """
        artifact = Artifact(key=key, meta=dict(meta), arrays=dict(arrays or {}))
        if self.cache_dir is not None:
            use_raw = (
                self.mmap_threshold_bytes is not None
                and self._artifact_bytes(artifact)
                >= self.mmap_threshold_bytes
            )

            def write():
                self.faults.check("store.write", key=key)
                if use_raw:
                    write_raw_archive(self._raw_path(key), artifact.meta,
                                      artifact.arrays)
                else:
                    write_archive(self._object_path(key), artifact.meta,
                                  artifact.arrays)

            try:
                self._with_retry(write, label=f"write {key[:12]}")
            except (TransientError, OSError) as exc:
                self._stats["put_failures"] += 1
                self._save_stats()
                _LOG.warning(
                    "write of artifact %s kept failing (%s); serving it "
                    "from memory only", key[:12], exc,
                )
                self._remember(artifact)
                self._record("puts", stage)
                return artifact
            self._verified.add(key)
            if use_raw:
                self._object_path(key).unlink(missing_ok=True)
                meta_back, arrays_back = read_raw_archive(
                    self._raw_path(key), verify=False
                )
                artifact = Artifact(key=key, meta=meta_back,
                                    arrays=arrays_back)
            else:
                if self._raw_path(key).exists():
                    shutil.rmtree(self._raw_path(key), ignore_errors=True)
            self._note_owner(key, stage)
            self._evict()
        self._remember(artifact)
        self._record("puts", stage)
        return artifact

    def streaming_writer(
        self, key: str, stage: str | None = None
    ) -> "StreamingArtifactWriter":
        """Open a :class:`StreamingArtifactWriter` building ``key`` on disk."""
        if self.cache_dir is None:
            raise ConfigurationError(
                "streaming writes need a cache_dir-backed store"
            )
        return StreamingArtifactWriter(self, key, stage=stage)

    def contains(self, key: str) -> bool:
        """Presence check that does not touch the stats or the LRU clock."""
        if key in self._memory:
            return True
        return (self.cache_dir is not None
                and (self._object_path(key).exists()
                     or self._raw_path(key).exists()))

    def clear(self) -> int:
        """Drop every artifact (memory + disk + quarantine); returns the
        number of live artifacts removed."""
        keys = set(self._memory)
        self._memory.clear()
        self._memory_used = 0
        self._verified.clear()
        if self.cache_dir is not None:
            self._sweep_orphans()
            for path, _, _ in self._disk_listing():
                keys.add(path.stem)
                self._remove_entry(path)
            if self.quarantine_dir.is_dir():
                shutil.rmtree(self.quarantine_dir, ignore_errors=True)
            self._stats["key_stages"].clear()
            self._save_stats()
        return len(keys)

    # -- memory / disk bookkeeping ----------------------------------------

    @staticmethod
    def _artifact_bytes(artifact: Artifact) -> int:
        return sum(a.nbytes for a in artifact.arrays.values())

    def _remember(self, artifact: Artifact) -> None:
        if any(isinstance(a, np.memmap) for a in artifact.arrays.values()):
            return  # memmapped arrays are already shared; never pin copies
        size = self._artifact_bytes(artifact)
        if self.memory_entries == 0 or size > self.memory_bytes:
            return  # oversized artifacts are served from disk only
        old = self._memory.pop(artifact.key, None)
        if old is not None:
            self._memory_used -= self._artifact_bytes(old)
        self._memory[artifact.key] = artifact
        self._memory_used += size
        while self._memory and (len(self._memory) > self.memory_entries
                                or self._memory_used > self.memory_bytes):
            _, evicted = self._memory.popitem(last=False)
            self._memory_used -= self._artifact_bytes(evicted)

    @staticmethod
    def _remove_entry(path: Path) -> None:
        """Delete one on-disk artifact, whichever format it is."""
        if path.is_dir():
            shutil.rmtree(path, ignore_errors=True)
        else:
            path.unlink(missing_ok=True)

    def _disk_listing(self) -> list[tuple[Path, int, float]]:
        """``(path, bytes, mtime)`` for every on-disk artifact.

        Raw-format directories report the sum of their file sizes; their
        mtime is the directory's own, refreshed by ``get`` like any
        archive's.
        """
        if self.cache_dir is None:
            return []
        out = []
        for path in self._objects_dir.iterdir():
            try:
                if path.suffix == ".npz" and path.is_file():
                    stat = path.stat()
                    out.append((path, stat.st_size, stat.st_mtime))
                elif path.suffix == ".raw" and path.is_dir():
                    size = sum(
                        member.stat().st_size
                        for member in path.iterdir()
                        if member.is_file()
                    )
                    out.append((path, size, path.stat().st_mtime))
            except OSError:
                continue
        return out

    def _evict(self) -> None:
        if self.max_entries is None and self.max_bytes is None:
            return
        # (mtime, key) — the key tie-break makes same-second writes (coarse
        # filesystem timestamps) evict in a stable, reproducible order.
        listing = sorted(self._disk_listing(),
                         key=lambda item: (item[2], item[0].stem))
        total_bytes = sum(size for _, size, _ in listing)
        count = len(listing)
        for path, size, _ in listing:
            over_entries = (self.max_entries is not None
                            and count > self.max_entries)
            over_bytes = (self.max_bytes is not None
                          and total_bytes > self.max_bytes)
            if not (over_entries or over_bytes):
                break
            self._remove_entry(path)
            dropped = self._memory.pop(path.stem, None)
            if dropped is not None:
                self._memory_used -= self._artifact_bytes(dropped)
            count -= 1
            total_bytes -= size
            self._stats["evictions"] += 1
            stage = self._stats["key_stages"].get(path.stem)
            if stage is not None:
                self._stage_counters(stage)["evictions"] += 1
        self._save_stats()


class StreamingArtifactWriter:
    """Build one raw-format artifact array-by-array directly on disk.

    Obtained from :meth:`ArtifactStore.streaming_writer`.  :meth:`create`
    hands back a writable memmap a builder fills block by block (the full
    array never exists on the heap); :meth:`commit` writes the manifest and
    atomically renames the assembly directory into the store's raw layout,
    returning the committed artifact with fresh read-only memmap views.
    :meth:`abort` discards the assembly; an uncommitted directory left by a
    crash is swept as a ``.tmp`` orphan on the next store construction.
    """

    def __init__(
        self, store: ArtifactStore, key: str, stage: str | None = None
    ) -> None:
        self._store = store
        self.key = key
        self._stage = stage
        self._tmp = Path(tempfile.mkdtemp(
            dir=store._objects_dir, prefix=f"{key}.raw.", suffix=".tmp"
        ))
        self._files: dict[str, str] = {}
        self._maps: dict[str, np.memmap] = {}
        self._done = False

    def create(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype | str,
    ) -> np.memmap:
        """Allocate array ``name`` on disk; returns a writable memmap."""
        if self._done:
            raise ConfigurationError("writer already committed or aborted")
        if name in self._files:
            raise ConfigurationError(f"array {name!r} already created")
        filename = f"a{len(self._files)}.npy"
        mapped = np.lib.format.open_memmap(
            self._tmp / filename, mode="w+", dtype=np.dtype(dtype),
            shape=tuple(int(s) for s in shape),
        )
        self._files[name] = filename
        self._maps[name] = mapped
        return mapped

    def commit(self, meta: dict) -> Artifact:
        """Publish the assembled arrays under the store's raw layout.

        Each member's sha256 digest is recorded in the manifest — a
        streaming read back through the just-written memmaps, never a heap
        copy — so a later read can detect bit rot in artifacts that were
        never on the heap to begin with.
        """
        if self._done:
            raise ConfigurationError("writer already committed or aborted")
        self._store.faults.check("store.write", key=self.key)
        digests = {}
        for name, mapped in self._maps.items():
            mapped.flush()
            digests[name] = _member_digest(mapped)
        self._maps.clear()  # drop writable handles before re-opening r/o
        (self._tmp / _RAW_MANIFEST).write_text(
            json.dumps({"meta": dict(meta), "arrays": self._files,
                        "digests": digests})
        )
        final = self._store._raw_path(self.key)
        if final.exists():
            shutil.rmtree(final)
        os.rename(self._tmp, final)
        self._done = True
        self._store._object_path(self.key).unlink(missing_ok=True)
        meta_back, arrays = read_raw_archive(final, verify=False)
        self._store._verified.add(self.key)
        self._store._note_owner(self.key, self._stage)
        self._store._evict()
        self._store._record("puts", self._stage)
        return Artifact(key=self.key, meta=meta_back, arrays=arrays)

    def abort(self) -> None:
        """Discard the assembly directory (safe to call repeatedly)."""
        if not self._done:
            self._maps.clear()
            shutil.rmtree(self._tmp, ignore_errors=True)
            self._done = True
