"""The :class:`Stage` abstraction decomposing Algorithm 1 into cacheable steps.

A stage is a *description* of one pipeline step: a name, a version, the
JSON-able parameters that determine its output, and the fingerprints of its
upstream stages.  The description alone yields a deterministic fingerprint
(:attr:`Stage.fingerprint`); :func:`run_stage` then either replays the
artifact stored under that address or builds and stores it.

Algorithm 1 maps onto five canonical stages:

========  ==================================================================
stage     output
========  ==================================================================
mine      concept distributions D over the candidate set (Eq. 1–2)
denoise   the clean concept set C' + re-mined distributions (Eq. 4–5)
build_q   the semantic similarity matrix Q (Eq. 3 / Eq. 6)
train     the hashing-network state dict + loss history (Eq. 11)
encode    ±1 hash codes for a query/database split
========  ==================================================================

Q depends only on the data + similarity settings, never on ``n_bits`` or
the train config, so every bit width of a sweep shares one mine/denoise/
build_q chain; ``train`` and ``encode`` fingerprints additionally fold in
the model configuration, which is what makes interrupted table runs
resumable per (method, n_bits) cell.

Execution policy never enters ``Stage.params``: the ``workers`` count,
the ``pool_backend`` (thread/process), and the ``out_of_core`` residency
flag all produce bit-identical artifacts, so a stage built serially, by
a thread pool, or by spawned processes replays from — and is replayed
by — the same address.  Callers enforce this by construction (those
knobs are plumbed beside the stage, not into it); see
:meth:`repro.config.UHSCMConfig.fingerprint_payload` for the same rule
applied to whole-config fingerprints.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.pipeline.fingerprint import CODE_FORMAT_VERSION, fingerprint
from repro.pipeline.store import (
    Artifact,
    ArtifactStore,
    StreamingArtifactWriter,
)

#: Canonical Algorithm-1 stage names.
MINE = "mine"
DENOISE = "denoise"
BUILD_Q = "build_q"
TRAIN = "train"
ENCODE = "encode"


@dataclass(frozen=True)
class Stage:
    """A deterministic description of one cacheable pipeline step."""

    name: str
    params: dict = field(default_factory=dict)
    inputs: tuple[str, ...] = ()
    version: int = 1

    @property
    def fingerprint(self) -> str:
        """Address of this stage's artifact in the store."""
        return fingerprint(
            {
                "format": CODE_FORMAT_VERSION,
                "stage": self.name,
                "version": self.version,
                "params": self.params,
                "inputs": list(self.inputs),
            }
        )


#: A stage builder returns the artifact body: ``(meta, arrays)``.
StageBuilder = Callable[[], tuple[dict, "dict[str, np.ndarray]"]]


def run_stage(
    store: ArtifactStore | None, stage: Stage, build: StageBuilder
) -> Artifact:
    """Replay ``stage`` from the store, or build and cache it.

    With ``store=None`` the stage always builds (the uncached execution
    path); the result is still wrapped in an :class:`Artifact` so callers
    are agnostic to where it came from.
    """
    key = stage.fingerprint
    if store is not None:
        cached = store.get(key, stage=stage.name)
        if cached is not None:
            return cached
    meta, arrays = build()
    if store is not None:
        return store.put(key, meta, arrays, stage=stage.name)
    return Artifact(key=key, meta=dict(meta), arrays=dict(arrays))


#: A streaming stage builder fills arrays through the writer's ``create``
#: and returns only the artifact meta; the arrays never live on the heap.
StreamingStageBuilder = Callable[["StreamingArtifactWriter"], dict]


def run_stage_streaming(
    store: ArtifactStore, stage: Stage, build: StreamingStageBuilder
) -> Artifact:
    """Replay ``stage`` from the store, or build it straight onto disk.

    The out-of-core sibling of :func:`run_stage` for artifacts too large to
    assemble on the heap: on a miss, ``build`` receives a
    :class:`~repro.pipeline.store.StreamingArtifactWriter`, allocates its
    output arrays with ``writer.create(name, shape, dtype)`` (each a
    writable memmap it fills block by block), and returns the artifact
    meta.  The committed artifact — like a replayed one — exposes its
    arrays as read-only memmap views.  Requires a disk-backed store.
    """
    key = stage.fingerprint
    cached = store.get(key, stage=stage.name)
    if cached is not None:
        return cached
    writer = store.streaming_writer(key, stage=stage.name)
    try:
        meta = build(writer)
    except BaseException:
        writer.abort()
        raise
    return writer.commit(meta)


def dataset_key(
    dataset: str, scale: float, seed: int, split: str = "train"
) -> dict:
    """The provenance payload identifying one deterministic data split.

    ``load_dataset(name, scale, seed)`` is fully deterministic, so these
    four fields (plus the code-format version folded in by every stage)
    are the data's fingerprint — no hashing of image tensors required on
    the hot path.
    """
    if not dataset:
        raise ConfigurationError("dataset name must be non-empty")
    return {
        "dataset": dataset,
        "scale": float(scale),
        "seed": int(seed),
        "split": split,
    }
