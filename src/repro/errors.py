"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subclasses separate user errors (bad configuration or
arguments) from internal invariant violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A configuration value is missing, malformed, or inconsistent."""


class ShapeError(ReproError, ValueError):
    """An array argument has the wrong shape or dtype."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted model was called before ``fit``."""


class VocabularyError(ReproError, ValueError):
    """A concept or token is not part of the active vocabulary."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge within its iteration budget."""
