"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subclasses separate user errors (bad configuration or
arguments) from internal invariant violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A configuration value is missing, malformed, or inconsistent."""


class ShapeError(ReproError, ValueError):
    """An array argument has the wrong shape or dtype."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted model was called before ``fit``."""


class VocabularyError(ReproError, ValueError):
    """A concept or token is not part of the active vocabulary."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge within its iteration budget."""


# -- failure taxonomy (serving / pipeline resilience) -------------------------
#
# The fault-tolerance layer (:mod:`repro.utils.faults`,
# :mod:`repro.utils.retry`, the store's integrity checks, and the serving
# degradation paths) speaks in these types so callers can route on the
# *class* of failure: retry transients, rebuild corruptions, degrade on
# unavailable shards, shed on overload, and give up on blown deadlines.


class TransientError(ReproError, RuntimeError):
    """A failure expected to succeed on retry (flaky I/O, injected fault).

    :class:`~repro.utils.retry.RetryPolicy` retries these by default; a
    transient that survives every attempt still surfaces as this type so
    the caller knows retrying more is pointless, not wrong.
    """


class ArtifactCorruptionError(ReproError, RuntimeError):
    """A stored artifact failed its integrity check (digest mismatch,
    truncated archive, unreadable manifest).

    Never retried — the bytes on disk are wrong, not busy.  The store
    quarantines the entry and rebuilds instead.
    """


class ShardUnavailableError(ReproError, RuntimeError):
    """A retrieval shard is failing or its circuit breaker is open.

    Raised to a caller only when *every* shard is unavailable; a subset of
    failing shards degrades to partial results instead.
    """


class OverloadedError(ReproError, RuntimeError):
    """The service shed this request because its pending queue is full.

    Back off and retry later; the request was rejected before any work.
    """


class DeadlineExceededError(ReproError, RuntimeError):
    """A request's deadline budget expired before an answer was ready."""


class ShutdownError(ReproError, RuntimeError):
    """The service is draining for shutdown and refuses new requests.

    In-flight requests complete normally; retry against a live replica.
    """


class ValidationError(ReproError, ValueError):
    """A request payload failed schema validation (HTTP front end)."""
