"""Numerically stable array math shared across the library.

These helpers implement the primitive operations the paper's equations rely
on: temperature softmax (Eq. 2), cosine-similarity matrices (Eq. 3/6), the
sign function used to binarize hash codes, and safe L2 normalization.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

#: Elements with L2 norm below this are treated as zero vectors when
#: normalizing, to avoid division blow-ups.
_NORM_EPS = 1e-12


def stable_exp(x: np.ndarray) -> np.ndarray:
    """Exponential with the max subtracted along the last axis.

    Equivalent to ``exp(x - max(x))`` row-wise; the common factor cancels in
    any softmax-style ratio, so downstream quotients are unchanged.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=-1, keepdims=True)
    return np.exp(shifted)


def softmax(x: np.ndarray, temperature: float = 1.0, axis: int = -1) -> np.ndarray:
    """Temperature softmax ``exp(t*x) / sum(exp(t*x))`` (paper Eq. 2).

    The paper multiplies scores by τ (sharpening for τ > 1), so
    ``temperature`` here is a multiplier, not a divisor.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    x = np.asarray(x, dtype=np.float64) * float(temperature)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def l2_normalize(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Scale rows (along ``axis``) to unit L2 norm; zero rows stay zero."""
    x = np.asarray(x, dtype=np.float64)
    norms = np.linalg.norm(x, axis=axis, keepdims=True)
    return x / np.maximum(norms, _NORM_EPS)


def pairwise_inner(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Dense inner-product matrix ``a @ b.T`` with shape checking."""
    a = np.asarray(a, dtype=np.float64)
    b = a if b is None else np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ShapeError(f"expected 2-D arrays, got shapes {a.shape} and {b.shape}")
    if a.shape[1] != b.shape[1]:
        raise ShapeError(
            f"dimension mismatch: {a.shape[1]} vs {b.shape[1]} feature columns"
        )
    return a @ b.T


def cosine_similarity_matrix(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Pairwise cosine similarity (paper Eq. 3 and Eq. 6).

    Rows of ``a`` (and ``b``) are treated as vectors; zero vectors produce
    zero similarity instead of NaN.
    """
    a_n = l2_normalize(np.atleast_2d(a))
    b_n = a_n if b is None else l2_normalize(np.atleast_2d(b))
    sims = pairwise_inner(a_n, b_n)
    return np.clip(sims, -1.0, 1.0)


def sign(x: np.ndarray) -> np.ndarray:
    """Element-wise sign in {-1, +1}, exactly the paper's ``sgn``:
    "returns 1 if the input is positive and returns -1 otherwise"
    (so zero maps to -1)."""
    x = np.asarray(x)
    out = np.where(x > 0, 1.0, -1.0)
    return out.astype(np.float64)
