"""Numerically stable array math shared across the library.

These helpers implement the primitive operations the paper's equations rely
on: temperature softmax (Eq. 2), cosine-similarity matrices (Eq. 3/6), the
sign function used to binarize hash codes, and safe L2 normalization.

The cosine helpers accept a ``dtype`` so callers under a numeric policy
(the nn stack's float32 mode, the blocked sparse-Q kernel) never pay an
upcast copy; the default stays float64, bit-stable with the seed
implementation.  :func:`blocked_topk_cosine` is the scaling escape hatch:
it tiles the ``a_n @ a_n.T`` product over row blocks and keeps only the k
strongest entries per row (plus the diagonal) in CSR form, so the full
(n, n) similarity matrix is never materialized.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import deque

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.utils.parallel import WorkerPool, as_pool, attach_shared_array

#: Elements with L2 norm below this are treated as zero vectors when
#: normalizing, to avoid division blow-ups.
_NORM_EPS = 1e-12


def stable_exp(x: np.ndarray) -> np.ndarray:
    """Exponential with the max subtracted along the last axis.

    Equivalent to ``exp(x - max(x))`` row-wise; the common factor cancels in
    any softmax-style ratio, so downstream quotients are unchanged.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=-1, keepdims=True)
    return np.exp(shifted)


def softmax(x: np.ndarray, temperature: float = 1.0, axis: int = -1) -> np.ndarray:
    """Temperature softmax ``exp(t*x) / sum(exp(t*x))`` (paper Eq. 2).

    The paper multiplies scores by τ (sharpening for τ > 1), so
    ``temperature`` here is a multiplier, not a divisor.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    x = np.asarray(x, dtype=np.float64) * float(temperature)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def l2_normalize(
    x: np.ndarray, axis: int = -1, dtype: np.dtype | str | None = None
) -> np.ndarray:
    """Scale rows (along ``axis``) to unit L2 norm; zero rows stay zero.

    ``dtype`` selects the working precision (default float64, the seed
    behavior); the norms are computed in that dtype, so a float32 caller
    never round-trips through a float64 copy.
    """
    x = np.asarray(x, dtype=np.float64 if dtype is None else dtype)
    norms = np.linalg.norm(x, axis=axis, keepdims=True)
    return x / np.maximum(norms, _NORM_EPS)


def pairwise_inner(
    a: np.ndarray,
    b: np.ndarray | None = None,
    dtype: np.dtype | str | None = None,
) -> np.ndarray:
    """Dense inner-product matrix ``a @ b.T`` with shape checking.

    ``dtype`` is a passthrough for dtype-policy callers: inputs already in
    that dtype are used as-is (no upcast copy), anything else is cast once.
    ``None`` keeps the historical float64 contract.
    """
    a = np.asarray(a, dtype=np.float64 if dtype is None else dtype)
    b = a if b is None else np.asarray(b, dtype=a.dtype)
    if a.ndim != 2 or b.ndim != 2:
        raise ShapeError(f"expected 2-D arrays, got shapes {a.shape} and {b.shape}")
    if a.shape[1] != b.shape[1]:
        raise ShapeError(
            f"dimension mismatch: {a.shape[1]} vs {b.shape[1]} feature columns"
        )
    return a @ b.T


def cosine_similarity_matrix(
    a: np.ndarray,
    b: np.ndarray | None = None,
    dtype: np.dtype | str | None = None,
) -> np.ndarray:
    """Pairwise cosine similarity (paper Eq. 3 and Eq. 6).

    Rows of ``a`` (and ``b``) are treated as vectors; zero vectors produce
    zero similarity instead of NaN.  ``dtype`` selects the working
    precision (default float64).
    """
    a_n = l2_normalize(np.atleast_2d(a), dtype=dtype)
    b_n = a_n if b is None else l2_normalize(np.atleast_2d(b), dtype=dtype)
    sims = pairwise_inner(a_n, b_n, dtype=a_n.dtype)
    return np.clip(sims, -1.0, 1.0)


#: Default cap on the GEMM tile; shared by the heap and streaming builders
#: so both resolve the same effective block height at any corpus size.
_MAX_BLOCK_BYTES = 256 * 1024 * 1024


def _capped_block_rows(
    n: int, itemsize: int, block_rows: int, max_block_bytes: int
) -> int:
    """Shrink ``block_rows`` so one tile stays under ``max_block_bytes``.

    A tile row costs one GEMM buffer row plus one argpartition output row.
    Floors at 16 rows: degenerate block heights of a few rows can route
    BLAS through a different (gemv-style) kernel whose summation order
    differs by ~1 ulp.
    """
    row_bytes = n * (itemsize + np.dtype(np.intp).itemsize)
    return min(block_rows, max(16, max_block_bytes // row_bytes))


def blocked_topk_cosine(
    features: np.ndarray,
    k: int,
    block_rows: int = 512,
    dtype: np.dtype | str | None = None,
    max_block_bytes: int = _MAX_BLOCK_BYTES,
    workers: "int | WorkerPool | None" = None,
    pool_backend: str | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR top-k rows of the cosine-similarity matrix, built blockwise.

    Tiles ``a_n[start:stop] @ a_n.T`` over row blocks of ``block_rows`` and
    keeps, per row, the k strongest entries plus the diagonal — the full
    (n, n) matrix never exists.  Peak extra memory is O(block_rows · n) for
    the GEMM buffer instead of O(n²) (times the worker count when the
    build runs parallel, each worker owning one tile buffer).

    ``workers`` (a count, an existing :class:`~repro.utils.parallel.
    WorkerPool`, or ``None`` = ``$REPRO_WORKERS``) dispatches the row-block
    tiles to a shared worker pool: every tile computes the same GEMM over
    the same fixed block shape and writes its own disjoint ``data``/
    ``indices`` row range, so the parallel build is bit-identical to the
    serial one at any worker count — the serial path (``workers <= 1``) is
    the oracle the parallel-scale bench gates against.

    ``pool_backend`` selects the pool's execution mode (``None`` resolves
    ``$REPRO_POOL`` → ``thread``).  The ``process`` backend sidesteps the
    GIL contention of the non-BLAS tile portions (clip, argpartition,
    sort, CSR writes): the normalized features are published **once** per
    build into shared memory, spawned workers attach zero-copy and ship
    back only their O(block · keep) selections, and the tile geometry is
    unchanged — so process results are bit-identical to thread and serial
    results.  When ``workers`` is an existing pool its own backend
    governs and ``pool_backend`` is ignored.

    Returns ``(data, indices, indptr)`` in canonical CSR form: column
    indices sorted ascending within each row, every row holding exactly
    ``min(k, n - 1) + 1`` entries.  Values are bit-identical to the
    corresponding entries of :func:`cosine_similarity_matrix` (a row block
    of a GEMM is the same dot products, and the clip is applied
    identically), so with ``k >= n - 1`` densifying the result reproduces
    the dense matrix exactly.  ``max_block_bytes`` caps the tile by
    shrinking ``block_rows`` for large n, with the same formula
    :func:`streaming_topk_cosine` uses — equal arguments therefore always
    resolve the same effective block height in both builders, which is
    what the bit-identity guarantee between them rests on (BLAS summation
    order is only stable for a fixed tile shape).
    """
    if k <= 0:
        raise ConfigurationError(f"k must be positive: {k}")
    if block_rows <= 0:
        raise ConfigurationError(f"block_rows must be positive: {block_rows}")
    if max_block_bytes <= 0:
        raise ConfigurationError(
            f"max_block_bytes must be positive: {max_block_bytes}"
        )
    a_n = l2_normalize(np.atleast_2d(features), dtype=dtype)
    if a_n.ndim != 2:
        raise ShapeError(f"expected a 2-D feature array, got {a_n.shape}")
    n = a_n.shape[0]
    if n == 0:  # empty corpus: an empty CSR, like the dense (0, 0) matrix
        return (np.zeros(0, dtype=a_n.dtype), np.zeros(0, dtype=np.int32),
                np.zeros(1, dtype=np.int32))
    keep = min(k, n - 1) + 1  # k strongest plus the diagonal
    index_dtype, indptr_dtype = _topk_index_dtypes(n, keep)
    block_rows = _capped_block_rows(
        n, a_n.dtype.itemsize, block_rows, max_block_bytes
    )
    data = np.empty((n, keep), dtype=a_n.dtype)
    indices = np.empty((n, keep), dtype=index_dtype)
    _fill_topk_blocks(a_n, keep, block_rows, data, indices, workers=workers,
                      pool_backend=pool_backend)
    indptr = np.arange(n + 1, dtype=indptr_dtype) * indptr_dtype(keep)
    return data.reshape(-1), indices.reshape(-1), indptr


def _topk_index_dtypes(n: int, keep: int) -> tuple[np.dtype, np.dtype]:
    """Smallest safe integer dtypes for CSR column indices and indptr.

    Column indices only hold values < n; indptr must hold nnz = n * keep,
    which can overflow int32 long before n does.
    """
    index_dtype = np.int32 if n <= np.iinfo(np.int32).max else np.int64
    indptr_dtype = (np.int32 if n * keep <= np.iinfo(np.int32).max
                    else np.int64)
    return index_dtype, indptr_dtype


def _topk_block(
    a_n: np.ndarray,
    a_t: np.ndarray,
    keep: int,
    start: int,
    stop: int,
    buf: np.ndarray,
    data: np.ndarray,
    indices: np.ndarray,
) -> None:
    """Compute one row-block tile into ``data[start:stop]``/``indices[...]``.

    One GEMM tile, an in-place clip, and a per-row top-(keep) selection.
    The body is shared verbatim by the serial loop and the pooled workers,
    so parallel results are bit-identical by construction: every tile
    writes only its own row range and depends only on its own dot
    products.
    """
    n = a_n.shape[0]
    block = buf[: stop - start]
    np.dot(a_n[start:stop], a_t, out=block)
    np.clip(block, -1.0, 1.0, out=block)
    order, values = _topk_select(block, keep, start, stop)
    indices[start:stop] = order
    data[start:stop] = values


def _topk_select(
    block: np.ndarray, keep: int, start: int, stop: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row top-(keep) selection on one computed tile.

    Returns ``(order, values)`` — ascending column indices and the
    corresponding clipped similarities for rows ``start:stop``.  Shared
    by the in-process tile writer (:func:`_topk_block`) and the
    process-pool task (:func:`_topk_tile_task`), so every backend runs
    the identical selection arithmetic.
    """
    n = block.shape[1]
    if keep == n:
        selected = np.broadcast_to(np.arange(n), block.shape)
    else:
        # Top-(keep) per row; the slice's first column is the weakest
        # selected entry, which the diagonal displaces when absent.
        selected = np.argpartition(block, n - keep, axis=1)[:, n - keep:]
        diagonal = np.arange(start, stop)
        has_diag = (selected == diagonal[:, None]).any(axis=1)
        selected[~has_diag, 0] = diagonal[~has_diag]
    rows = np.arange(stop - start)
    order = np.sort(selected, axis=1)
    return order, block[rows[:, None], order]


#: Per-process caches for the pool workers: the attached operand (one
#: shared-memory segment or scratch memmap per build — re-attaching per
#: tile would add a syscall + mmap to every task) and the reusable GEMM
#: tile buffer.  Single-slot with eviction: a worker only ever serves one
#: build's geometry at a time.
_WORKER_OPERAND: dict = {}
_WORKER_BUF: dict = {}


def _attach_operand(ref: tuple) -> np.ndarray:
    """Worker-side resolve of an operand ref to a read-only ndarray.

    ``("shm", name, shape, dtype)`` attaches a shared-memory segment
    published by :meth:`~repro.utils.parallel.WorkerPool.publish`;
    ``("mmap", path)`` opens the streaming builder's on-disk normalized
    scratch.  Either way the attachment is cached for the build's
    remaining tiles and evicted when a different ref arrives.
    """
    cached = _WORKER_OPERAND.get("operand")
    if cached is not None and cached[0] == ref:
        return cached[1]
    if cached is not None and cached[2] is not None:
        cached[2].close()
    _WORKER_OPERAND.clear()
    if ref[0] == "shm":
        array, shm = attach_shared_array(ref)
    elif ref[0] == "mmap":
        array = np.lib.format.open_memmap(ref[1], mode="r")
        shm = None
    else:
        raise ConfigurationError(f"unknown operand ref: {ref!r}")
    _WORKER_OPERAND["operand"] = (ref, array, shm)
    return array


def _topk_tile_task(
    ref: tuple, keep: int, block_rows: int, start: int, stop: int
) -> tuple[int, np.ndarray, np.ndarray]:
    """One row-block tile, run inside a spawned pool worker.

    Module-level and picklable (the process-backend requirement); reads
    the build's operand zero-copy via :func:`_attach_operand`, computes
    the same GEMM + clip + selection as :func:`_topk_block` over the same
    fixed tile shape (⇒ identical BLAS summation order ⇒ bit-identical
    values), and returns ``(start, order, values)`` — the O(block · keep)
    selection, never the O(block · n) GEMM tile — for the parent to write
    into its CSR row range.
    """
    a_n = _attach_operand(ref)
    n = a_n.shape[0]
    key = (block_rows, n, a_n.dtype.str)
    buf = _WORKER_BUF.get(key)
    if buf is None:
        _WORKER_BUF.clear()
        buf = _WORKER_BUF[key] = np.empty((block_rows, n), dtype=a_n.dtype)
    block = buf[: stop - start]
    np.dot(a_n[start:stop], a_n.T, out=block)
    np.clip(block, -1.0, 1.0, out=block)
    order, values = _topk_select(block, keep, start, stop)
    return start, order, values


def _fill_topk_blocks(
    a_n: np.ndarray,
    keep: int,
    block_rows: int,
    data: np.ndarray,
    indices: np.ndarray,
    workers: "int | WorkerPool | None" = 1,
    pool_backend: str | None = None,
    operand_ref: tuple | None = None,
) -> None:
    """The tiled-GEMM top-k loop shared by the heap and streaming builders.

    ``a_n`` is the L2-normalized feature matrix (heap array or memmap);
    ``data``/``indices`` are preallocated (n, keep) destinations — heap
    arrays for :func:`blocked_topk_cosine`, writable on-disk memmap views
    for :func:`streaming_topk_cosine` (workers of a parallel out-of-core
    build all write their own row ranges of the same scratch-backed
    memmaps).  Each output row depends only on that row's dot products, so
    results are identical wherever the buffers live and whichever worker
    computes them.

    With ``workers > 1`` the tiles dispatch to a
    :class:`~repro.utils.parallel.WorkerPool`: the GEMM releases the GIL
    inside BLAS, each worker thread reuses one private tile buffer
    (allocated lazily per thread, never shared), and the tile shape is
    fixed by :func:`_capped_block_rows` regardless of the worker count —
    the same-summation-order property the bit-identity guarantee rests
    on.

    With a ``process``-backend pool the tiles instead dispatch as
    :func:`_topk_tile_task` to spawned workers: ``operand_ref`` names the
    zero-copy operand (a streaming build passes its on-disk normalized
    scratch; ``None`` publishes ``a_n`` into shared memory for the
    build's duration), workers return their O(block · keep) selections,
    and this parent writes each into its CSR row range.  Submission is
    windowed so at most a few tiles' results are in flight at once.
    """
    n = a_n.shape[0]
    block_rows = min(block_rows, n)
    starts = range(0, n, block_rows)
    pool, owned = as_pool(workers, name="topk", backend=pool_backend)
    try:
        if pool.serial:
            a_t = a_n.T  # transposed view; BLAS consumes it without a copy
            buf = np.empty((block_rows, n), dtype=a_n.dtype)
            for start in starts:
                stop = min(start + block_rows, n)
                _topk_block(a_n, a_t, keep, start, stop, buf, data, indices)
            return
        if pool.backend == "process":
            _fill_topk_blocks_process(
                pool, a_n, keep, block_rows, data, indices, operand_ref
            )
            return
        a_t = a_n.T
        scratch = threading.local()

        def tile(start: int) -> None:
            buf = getattr(scratch, "buf", None)
            if buf is None:
                buf = np.empty((block_rows, n), dtype=a_n.dtype)
                scratch.buf = buf
            stop = min(start + block_rows, n)
            _topk_block(a_n, a_t, keep, start, stop, buf, data, indices)

        pool.map(tile, starts)
    finally:
        if owned:
            pool.close()


def _fill_topk_blocks_process(
    pool: WorkerPool,
    a_n: np.ndarray,
    keep: int,
    block_rows: int,
    data: np.ndarray,
    indices: np.ndarray,
    operand_ref: tuple | None,
) -> None:
    """Process-backend tile loop: shared operand out, selections back.

    Publishes the normalized features once (unless the caller already has
    a disk-resident operand to name), streams the tiles through the pool
    with a bounded submission window — outstanding results cost
    O(window · block · keep), never O(n²) — and writes each returned
    selection into its disjoint CSR row range.  The publish/release pair
    is balanced in ``finally``; a tile raising mid-build therefore still
    unlinks the segment (workers' existing mappings stay valid, POSIX
    semantics), and the pool's own close would catch it regardless.
    """
    n = a_n.shape[0]
    handle = None
    try:
        if operand_ref is None:
            handle = pool.publish(a_n)
            ref = handle.ref
        else:
            ref = operand_ref

        def drain(future) -> None:
            start, order, values = future.result()
            stop = start + order.shape[0]
            indices[start:stop] = order
            data[start:stop] = values

        window = max(4, 2 * pool.workers)
        pending: deque = deque()
        for start in range(0, n, block_rows):
            stop = min(start + block_rows, n)
            pending.append(
                pool.submit(_topk_tile_task, ref, keep, block_rows, start, stop)
            )
            if len(pending) >= window:
                drain(pending.popleft())
        while pending:
            drain(pending.popleft())
    finally:
        if handle is not None:
            pool.release(handle)


#: Row-block height used when streaming features through normalization.
_STREAM_NORM_ROWS = 8192


def streaming_topk_cosine(
    features: np.ndarray,
    k: int,
    create_array,
    block_rows: int = 512,
    dtype: np.dtype | str | None = None,
    max_block_bytes: int = _MAX_BLOCK_BYTES,
    workers: "int | WorkerPool | None" = None,
    pool_backend: str | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`blocked_topk_cosine` with every O(n)-sized buffer on disk.

    The out-of-core builder: ``features`` may be a memmap; the normalized
    copy streams into an anonymous scratch memmap (unlinked immediately,
    so its pages die with the map), and the CSR ``data``/``indices``/
    ``indptr`` outputs are allocated through ``create_array(name, shape,
    dtype)`` — typically
    :meth:`~repro.pipeline.store.StreamingArtifactWriter.create`, which
    puts them straight into an artifact directory.  Peak heap is the
    O(block_rows · n) GEMM tile plus one block of rows, independent of
    the corpus size; ``max_block_bytes`` additionally caps the tile by
    shrinking ``block_rows`` for large n.

    The array names are ``q_data`` / ``q_indices`` / ``q_indptr`` — the
    CSR payload layout of
    :class:`~repro.core.similarity_matrix.SparseTopKSimilarity` — and the
    filled values are bit-identical to :func:`blocked_topk_cosine` at
    equal ``block_rows``/``dtype``/``max_block_bytes`` arguments: both
    builders resolve the same effective tile height through
    :func:`_capped_block_rows`, per-row L2 normalization equals the
    whole-array normalization, and the per-row argpartition/sort is
    independent of where its buffers live.
    Returns the three (filled) created arrays.

    ``workers``/``pool_backend`` parallelize the tile loop exactly as in
    :func:`blocked_topk_cosine`: every worker reads the one shared
    normalized scratch memmap and writes its own row range of the
    on-disk CSR buffers, so the out-of-core build scales across cores
    with the same bit-identity guarantee as the heap build.  Under the
    ``process`` backend the scratch file doubles as the zero-copy operand
    — its unlink is deferred until the fill completes so spawned workers
    can open it by path (no second copy into shared memory), with the
    unlink re-attempted in ``finally`` so a failed build cannot leak it.
    """
    if k <= 0:
        raise ConfigurationError(f"k must be positive: {k}")
    if block_rows <= 0:
        raise ConfigurationError(f"block_rows must be positive: {block_rows}")
    if max_block_bytes <= 0:
        raise ConfigurationError(
            f"max_block_bytes must be positive: {max_block_bytes}"
        )
    features = np.atleast_2d(features)
    if features.ndim != 2:
        raise ShapeError(f"expected a 2-D feature array, got {features.shape}")
    work_dtype = np.dtype(np.float64 if dtype is None else dtype)
    n, dim = features.shape
    if n == 0:
        empty_indptr = create_array("q_indptr", (1,), np.int32)
        empty_indptr[:] = 0
        return (
            create_array("q_data", (0,), work_dtype),
            create_array("q_indices", (0,), np.int32),
            empty_indptr,
        )
    keep = min(k, n - 1) + 1
    index_dtype, indptr_dtype = _topk_index_dtypes(n, keep)

    pool, owned = as_pool(workers, name="topk", backend=pool_backend)
    process_mode = not pool.serial and pool.backend == "process"

    # Normalized features live in an anonymous scratch memmap: unlinking a
    # mapped file keeps the mapping valid (POSIX), so the scratch needs no
    # cleanup path and its disk space is reclaimed when the map dies.
    # Process-backend builds keep the name alive until the fill is done —
    # spawned workers open the scratch by path as their zero-copy operand.
    fd, scratch_name = tempfile.mkstemp(prefix="repro-topk-", suffix=".npy")
    os.close(fd)
    a_n = np.lib.format.open_memmap(
        scratch_name, mode="w+", dtype=work_dtype, shape=(n, dim)
    )

    def unlink_scratch() -> None:
        try:
            os.unlink(scratch_name)
        except OSError:
            pass  # already gone, or non-POSIX; worst case it lingers

    if not process_mode:
        unlink_scratch()
    try:
        for start in range(0, n, _STREAM_NORM_ROWS):
            stop = min(start + _STREAM_NORM_ROWS, n)
            # Row-wise, so per-block normalization == whole-array
            # normalization.
            a_n[start:stop] = l2_normalize(
                features[start:stop], dtype=work_dtype
            )
        if process_mode:
            a_n.flush()  # workers read the file; their view must be current

        block_rows = _capped_block_rows(
            n, work_dtype.itemsize, block_rows, max_block_bytes
        )

        data = create_array("q_data", (n * keep,), work_dtype)
        indices = create_array("q_indices", (n * keep,), index_dtype)
        indptr = create_array("q_indptr", (n + 1,), indptr_dtype)
        _fill_topk_blocks(
            a_n, keep, block_rows, data.reshape(n, keep),
            indices.reshape(n, keep), workers=pool,
            operand_ref=("mmap", scratch_name) if process_mode else None,
        )
        indptr[:] = np.arange(n + 1, dtype=indptr_dtype) * indptr_dtype(keep)
        return data, indices, indptr
    finally:
        if process_mode:
            unlink_scratch()
        if owned:
            pool.close()


def sign(x: np.ndarray) -> np.ndarray:
    """Element-wise sign in {-1, +1}, exactly the paper's ``sgn``:
    "returns 1 if the input is positive and returns -1 otherwise"
    (so zero maps to -1)."""
    x = np.asarray(x)
    out = np.where(x > 0, 1.0, -1.0)
    return out.astype(np.float64)
