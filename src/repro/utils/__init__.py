"""Shared utilities: deterministic RNG plumbing, stable math, timing,
tables, the worker-pool layer behind every parallel kernel, and the
resilience primitives (fault injection, retries, circuit breakers)."""

from repro.utils.faults import NULL_INJECTOR, FaultInjector, FaultRule
from repro.utils.mathops import (
    cosine_similarity_matrix,
    l2_normalize,
    pairwise_inner,
    sign,
    softmax,
    stable_exp,
)
from repro.utils.metrics import DEFAULT_BOUNDS, LatencyHistogram, geometric_bounds
from repro.utils.parallel import (
    POOL_BACKEND_ENV,
    WORKERS_ENV,
    WorkerPool,
    require_thread_backend,
    resolve_pool_backend,
    resolve_workers,
)
from repro.utils.retry import CircuitBreaker, RetryPolicy
from repro.utils.rng import RngMixin, as_generator, spawn
from repro.utils.tables import format_float, render_table
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_array,
    check_binary_codes,
    check_in_range,
    check_positive,
    check_probability_rows,
)

__all__ = [
    "CircuitBreaker",
    "DEFAULT_BOUNDS",
    "FaultInjector",
    "FaultRule",
    "LatencyHistogram",
    "NULL_INJECTOR",
    "POOL_BACKEND_ENV",
    "RetryPolicy",
    "RngMixin",
    "Timer",
    "WORKERS_ENV",
    "WorkerPool",
    "as_generator",
    "check_array",
    "check_binary_codes",
    "check_in_range",
    "check_positive",
    "check_probability_rows",
    "cosine_similarity_matrix",
    "format_float",
    "geometric_bounds",
    "l2_normalize",
    "pairwise_inner",
    "render_table",
    "require_thread_backend",
    "resolve_pool_backend",
    "resolve_workers",
    "sign",
    "softmax",
    "spawn",
    "stable_exp",
]
