"""Shared worker-pool layer for the parallel kernels.

Every hot path in the stack — the blocked/streaming top-k cosine Q build,
the sharded search fan-out, and the per-epoch training step — decomposes
into independent units of work whose outputs land in disjoint slots: a
row-block GEMM tile writes its own CSR row range, a shard probe owns its
merge position, a prefetched batch gather feeds exactly one optimizer
step.  :class:`WorkerPool` is the one dispatch surface those kernels
share: a thread pool (NumPy's BLAS and most large-array ufuncs release
the GIL, so threads scale the GEMM/popcount-bound work without the copy
cost of processes) with **deterministic index-ordered result
collection** — :meth:`WorkerPool.map` returns results in submission
order no matter which worker finished first, so every reduction
downstream of the pool runs in the same order as the serial loop and the
parallel outputs stay bit-identical to it.

``workers <= 1`` (the default everywhere) is the **serial fallback**: no
executor is created, submissions run inline on the calling thread, and
the pool is a plain function call with counters.  That path is the
bit-identity oracle the parallel-scale bench gates against.

The effective worker count resolves ``workers`` argument →
``$REPRO_WORKERS`` → 1, via :func:`resolve_workers`; a single knob (the
``workers`` config field / ``--workers`` CLI flag) therefore controls
every parallel site at once.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Callable, Iterable, Sequence

from repro.errors import ConfigurationError

#: Environment variable supplying the default worker count.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: ``workers``, else ``$REPRO_WORKERS``, else 1.

    Values below 1 clamp to 1 (the serial fallback) rather than erroring,
    so callers can pass a "no parallelism" sentinel through unchanged; a
    non-integer ``$REPRO_WORKERS`` raises
    :class:`~repro.errors.ConfigurationError` (a typo'd deployment knob
    must not silently serialize the fleet).
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"${WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    return max(1, int(workers))


class _SerialFuture:
    """Result of a task the serial pool already ran inline."""

    __slots__ = ("_value", "_exc")

    def __init__(self, value=None, exc: BaseException | None = None) -> None:
        self._value = value
        self._exc = exc

    def result(self):
        if self._exc is not None:
            raise self._exc
        return self._value


class WorkerPool:
    """Thread pool with a serial fallback and deterministic collection.

    Parameters
    ----------
    workers:
        Worker count, resolved through :func:`resolve_workers` (``None``
        reads ``$REPRO_WORKERS``).  At ``workers <= 1`` no threads exist
        and every submission executes inline — the serial oracle path.

    Counters
    --------
    ``submitted`` / ``completed`` / ``rejected`` count tasks handed to
    the pool, tasks that finished running (successfully or not), and
    submissions refused because the pool was already closed.  They feed
    ``stats()`` surfaces (:meth:`repro.serving.HashingService.stats`)
    and let tests assert that the serial fallback really ran inline.
    """

    def __init__(self, workers: int | None = None, name: str = "repro") -> None:
        self.workers = resolve_workers(workers)
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self._closed = False
        self._lock = threading.Lock()
        if self.workers > 1:
            from concurrent.futures import ThreadPoolExecutor

            self._executor: "ThreadPoolExecutor | None" = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix=f"{name}-worker"
            )
        else:
            self._executor = None

    @property
    def serial(self) -> bool:
        """Whether this pool is the inline (no-threads) fallback."""
        return self._executor is None

    # -- dispatch ---------------------------------------------------------------

    def submit(self, fn: Callable, *args, **kwargs):
        """Run ``fn(*args, **kwargs)``; returns an object with ``result()``.

        Serial pools execute the task immediately on the calling thread
        (exceptions are captured and re-raised from ``result()``, exactly
        like a real future, so callers never branch on the mode).
        Submitting to a closed pool raises
        :class:`~repro.errors.ConfigurationError` and counts under
        ``rejected``.
        """
        with self._lock:
            if self._closed:
                self.rejected += 1
                raise ConfigurationError("cannot submit to a closed WorkerPool")
            self.submitted += 1
        if self._executor is None:
            try:
                value = fn(*args, **kwargs)
            except BaseException as exc:  # re-raised at result(), like a future
                future = _SerialFuture(exc=exc)
            else:
                future = _SerialFuture(value=value)
            with self._lock:
                self.completed += 1
            return future
        return self._executor.submit(self._run, fn, args, kwargs)

    def _run(self, fn: Callable, args, kwargs):
        try:
            return fn(*args, **kwargs)
        finally:
            with self._lock:
                self.completed += 1

    def map(self, fn: Callable, items: Iterable) -> list:
        """``[fn(item) for item in items]`` with pool-parallel execution.

        Results come back **in item order** regardless of completion
        order — the property every parallel kernel's bit-identity rests
        on (reductions downstream of the pool see the serial sequence).
        The first exception, in item order, propagates after all tasks
        were dispatched.
        """
        futures = [self.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Refuse new work and join the worker threads (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reporting --------------------------------------------------------------

    def stats(self) -> dict:
        """Worker count, mode, and the submitted/completed/rejected counters."""
        with self._lock:
            return {
                "workers": self.workers,
                "serial": self.serial,
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
            }


def as_pool(
    workers: "int | WorkerPool | None", name: str = "repro"
) -> tuple[WorkerPool, bool]:
    """Normalize a ``workers`` argument into ``(pool, owned)``.

    Kernels accept either a worker count (they build and own a transient
    pool) or an existing :class:`WorkerPool` (shared, caller-owned — e.g.
    the benches, which inspect its counters afterwards).  ``owned`` tells
    the caller whether it must :meth:`~WorkerPool.close` the pool.
    """
    if isinstance(workers, WorkerPool):
        return workers, False
    return WorkerPool(workers, name=name), True


__all__: Sequence[str] = (
    "WORKERS_ENV",
    "WorkerPool",
    "as_pool",
    "resolve_workers",
)
