"""Shared worker-pool layer for the parallel kernels.

Every hot path in the stack — the blocked/streaming top-k cosine Q build,
the sharded search fan-out, and the per-epoch training step — decomposes
into independent units of work whose outputs land in disjoint slots: a
row-block GEMM tile writes its own CSR row range, a shard probe owns its
merge position, a prefetched batch gather feeds exactly one optimizer
step.  :class:`WorkerPool` is the one dispatch surface those kernels
share, with **deterministic index-ordered result collection** —
:meth:`WorkerPool.map` returns results in submission order no matter
which worker finished first, so every reduction downstream of the pool
runs in the same order as the serial loop and the parallel outputs stay
bit-identical to it.

Two execution backends sit behind the same interface:

``thread`` (the default)
    A stdlib thread pool.  NumPy's BLAS and most large-array ufuncs
    release the GIL, so threads scale the GEMM/popcount-bound work
    without any copy or pickling cost.  The non-BLAS portions of a tile
    (clip, argpartition/argsort, fancy-index CSR writes) hold the GIL,
    which is why measured thread scaling on the Q-build tiles tops out
    near 2x at 4 workers.

``process``
    A spawn-based process pool for the GIL-bound remainder.  Tasks must
    be picklable module-level callables; large read-only operands travel
    zero-copy through :meth:`WorkerPool.publish` —
    :mod:`multiprocessing.shared_memory` segments that workers attach by
    name — or through an on-disk memmap path (the out-of-core scratch).
    The pool owns a registry of every published segment and guarantees
    unlink-on-close even when a build raises, so no ``/dev/shm`` segment
    outlives the pool.  Only the process-safe kernels (the top-k Q
    builders) accept this backend; latency-bound call sites that share
    index/model state (shard fan-out, training prefetch) are thread-only
    and reject it via :func:`require_thread_backend`.

``workers <= 1`` (the default everywhere) is the **serial fallback**: no
executor is created, submissions run inline on the calling thread, and
the pool is a plain function call with counters.  That path is the
bit-identity oracle the parallel-scale bench gates against.

The effective worker count resolves ``workers`` argument →
``$REPRO_WORKERS`` → 1, via :func:`resolve_workers`, and is clamped to
``os.cpu_count()`` (with a logged warning) so a typo'd fleet knob cannot
oversubscribe a box; the backend resolves ``backend`` argument →
``$REPRO_POOL`` → ``thread`` via :func:`resolve_pool_backend`.  A single
pair of knobs (the ``workers``/``pool_backend`` config fields, the
``--workers``/``--pool-backend`` CLI flags) therefore controls every
parallel site at once.

.. note::
   This module must stay free of module-level numpy (and other heavy)
   imports: it is the first thing a spawned pool worker unpickles, and
   the worker initializer re-asserts the BLAS thread pinning from
   ``os.environ`` — pinning that only binds if BLAS has not loaded yet.
"""

from __future__ import annotations

import logging
import os
import threading
from collections.abc import Callable, Iterable, Sequence

from repro.errors import ConfigurationError

#: Environment variable supplying the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable supplying the default pool backend.
POOL_BACKEND_ENV = "REPRO_POOL"

#: Recognized pool backends.
POOL_BACKENDS: tuple[str, ...] = ("thread", "process")

#: Environment variables that cap the BLAS/OpenMP thread pools.  The
#: parallel benches pin these to ``1`` before numpy loads so the worker
#: pool owns the cores; pool workers re-assert them in their initializer
#: (spawned children inherit ``os.environ``, but re-setting them is what
#: guarantees the pinning survives exotic launch paths).
BLAS_ENV_VARS: tuple[str, ...] = (
    "OPENBLAS_NUM_THREADS",
    "OMP_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)

_logger = logging.getLogger("repro.parallel")


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: ``workers``, else ``$REPRO_WORKERS``, else 1.

    Values below 1 clamp to 1 (the serial fallback) rather than erroring,
    so callers can pass a "no parallelism" sentinel through unchanged; a
    non-integer ``$REPRO_WORKERS`` raises
    :class:`~repro.errors.ConfigurationError` (a typo'd deployment knob
    must not silently serialize the fleet).  Counts above
    ``os.cpu_count()`` clamp down to it with a logged warning —
    oversubscribing cores never helps the compute-bound kernels and the
    silent variant hid misconfigured fleets; the pre-clamp request stays
    visible in :meth:`WorkerPool.stats` as ``requested``.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"${WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    workers = max(1, int(workers))
    cpus = os.cpu_count() or 1
    if workers > cpus:
        _logger.warning(
            "requested %d workers on a %d-core machine; clamping to %d",
            workers, cpus, cpus,
        )
        return cpus
    return workers


def resolve_pool_backend(backend: str | None = None) -> str:
    """Effective backend: ``backend``, else ``$REPRO_POOL``, else ``thread``.

    Anything outside :data:`POOL_BACKENDS` raises
    :class:`~repro.errors.ConfigurationError` — like a typo'd worker
    count, a typo'd backend must fail loudly, not silently fall back to
    threads.
    """
    if backend is None:
        raw = os.environ.get(POOL_BACKEND_ENV, "").strip()
        if not raw:
            return "thread"
        backend = raw
    if backend not in POOL_BACKENDS:
        raise ConfigurationError(
            f"pool backend must be one of {POOL_BACKENDS}, got {backend!r}"
        )
    return backend


def require_thread_backend(backend: str | None, site: str) -> str:
    """Validate a backend request at a thread-only call site.

    The latency-bound pool consumers (sharded fan-out, the trainer's
    one-slot prefetch) share index/model state with the caller and cannot
    run in child processes.  They resolve their backend through this
    helper so an explicit ``process`` request fails with a typed error
    instead of silently degrading to threads.  ``None`` resolves straight
    to ``thread`` — deliberately *without* consulting ``$REPRO_POOL``, so
    an environment-wide process default still reaches only the
    process-safe kernels.
    """
    if backend is None:
        return "thread"
    resolved = resolve_pool_backend(backend)
    if resolved == "process":
        raise ConfigurationError(
            f"{site} is thread-only (it shares in-process state with the "
            f"caller); pool_backend='process' applies to the top-k Q-build "
            f"kernels — drop the backend override here"
        )
    return resolved


# -- shared-memory operand transport ------------------------------------------


class SharedArrayHandle:
    """Parent-side handle to an ndarray published in POSIX shared memory.

    Created by :func:`publish_shared_array` (usually via
    :meth:`WorkerPool.publish`, which also registers the segment for
    cleanup-on-close).  :attr:`ref` is the small picklable token workers
    pass to :func:`attach_shared_array`; :meth:`release` closes *and
    unlinks* the segment (idempotent — the pool's close path may race a
    kernel's ``finally``).
    """

    __slots__ = ("_shm", "shape", "dtype_str")

    def __init__(self, shm, shape: tuple, dtype_str: str) -> None:
        self._shm = shm
        self.shape = tuple(shape)
        self.dtype_str = dtype_str

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def ref(self) -> tuple:
        """Picklable ``("shm", name, shape, dtype)`` attachment token."""
        return ("shm", self._shm.name, self.shape, self.dtype_str)

    @property
    def released(self) -> bool:
        return self._shm is None

    def release(self) -> None:
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # already unlinked by a racing cleanup
            pass


def publish_shared_array(array) -> SharedArrayHandle:
    """Copy ``array`` into a fresh shared-memory segment, once.

    The one O(n) copy per build is the price of zero-copy reads from
    every worker afterwards.  Prefer :meth:`WorkerPool.publish`, which
    additionally guarantees unlink-on-close.
    """
    import numpy as np
    from multiprocessing import shared_memory

    array = np.ascontiguousarray(array)
    shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
    view[...] = array
    del view  # drop the buffer view before the handle can outlive it
    return SharedArrayHandle(shm, array.shape, array.dtype.str)


def attach_shared_array(ref: tuple):
    """Worker-side attach: ``ref`` token → read-only ndarray view.

    Returns ``(array, shm)``; the caller must keep ``shm`` alive as long
    as the array is in use and ``close()`` it when done.  The attach
    re-registers the segment with the resource tracker, but spawned pool
    children share the parent's tracker (its cache is a set), so the
    registration is idempotent: the parent's unlink performs the single
    matching unregister, and if the parent dies without unlinking the
    tracker reaps the segment at shutdown.
    """
    import numpy as np
    from multiprocessing import shared_memory

    kind, name, shape, dtype_str = ref
    if kind != "shm":
        raise ConfigurationError(f"not a shared-memory ref: {ref!r}")
    shm = shared_memory.SharedMemory(name=name)
    array = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm.buf)
    array.flags.writeable = False
    return array, shm


def _process_worker_init(env: dict) -> None:
    """Initializer run once in every spawned pool worker.

    Re-asserts the parent's BLAS thread pinning: spawned children inherit
    ``os.environ`` (which is what binds when BLAS loads during the first
    task unpickle), and re-setting the variables here keeps the pinning
    authoritative even if a launcher scrubbed the environment.  When
    :mod:`threadpoolctl` is importable the limit is additionally applied
    to already-loaded BLAS pools, which is the only post-import lever.
    """
    os.environ.update(env)
    limit = env.get("OPENBLAS_NUM_THREADS") or env.get("OMP_NUM_THREADS")
    if limit:
        try:
            import threadpoolctl

            threadpoolctl.threadpool_limits(int(limit))
        except ImportError:
            pass


def pool_worker_probe(_=None) -> dict:
    """Report a worker's identity + BLAS pinning (picklable diagnostics).

    Mapped over a process pool by the parallel-scale bench to assert that
    the env pinning actually propagated into the children (satisfying
    "assert in-worker threadpool limits where checkable"); also useful as
    a cheap warm-up task that forces every worker to spawn.
    """
    info: dict = {
        "pid": os.getpid(),
        "env": {var: os.environ.get(var) for var in BLAS_ENV_VARS},
        "threadpools": None,
    }
    try:
        import threadpoolctl

        info["threadpools"] = [
            {"library": entry.get("internal_api"),
             "num_threads": entry.get("num_threads")}
            for entry in threadpoolctl.threadpool_info()
        ]
    except ImportError:
        pass
    return info


class _SerialFuture:
    """Result of a task the serial pool already ran inline."""

    __slots__ = ("_value", "_exc")

    def __init__(self, value=None, exc: BaseException | None = None) -> None:
        self._value = value
        self._exc = exc

    def result(self):
        if self._exc is not None:
            raise self._exc
        return self._value


class WorkerPool:
    """Thread or process pool with a serial fallback and deterministic
    collection.

    Parameters
    ----------
    workers:
        Worker count, resolved through :func:`resolve_workers` (``None``
        reads ``$REPRO_WORKERS``; counts above ``os.cpu_count()`` clamp).
        At ``workers <= 1`` no executor exists and every submission
        executes inline — the serial oracle path, whatever the backend.
    backend:
        ``"thread"`` (default) or ``"process"``, resolved through
        :func:`resolve_pool_backend` (``None`` reads ``$REPRO_POOL``).
        The process backend spawns fresh interpreters (spawn context —
        fork would duplicate BLAS thread state) whose initializer
        re-asserts the parent's BLAS pinning; tasks must be picklable
        module-level callables.

    Counters
    --------
    ``submitted`` / ``completed`` / ``rejected`` count tasks handed to
    the pool, tasks that finished running (successfully or not), and
    submissions refused because the pool was already closed;
    ``shm_published`` / ``shm_released`` count shared-memory segments
    through :meth:`publish`/:meth:`release` (equal counts after ``close``
    is the no-leak invariant the parallel-scale bench gates).  They feed
    ``stats()`` surfaces (:meth:`repro.serving.HashingService.stats`)
    and let tests assert that the serial fallback really ran inline.
    """

    def __init__(
        self,
        workers: int | None = None,
        name: str = "repro",
        backend: str | None = None,
    ) -> None:
        self.backend = resolve_pool_backend(backend)
        raw = workers if workers is not None else None
        self.requested = (
            max(1, int(raw)) if isinstance(raw, int) else resolve_workers(raw)
        )
        self.workers = resolve_workers(workers)
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.shm_published = 0
        self.shm_released = 0
        self._shared: list[SharedArrayHandle] = []
        self._closed = False
        self._lock = threading.Lock()
        if self.workers > 1:
            if self.backend == "process":
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                env = {var: os.environ[var] for var in BLAS_ENV_VARS
                       if var in os.environ}
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context("spawn"),
                    initializer=_process_worker_init,
                    initargs=(env,),
                )
            else:
                from concurrent.futures import ThreadPoolExecutor

                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix=f"{name}-worker",
                )
        else:
            self._executor = None

    @property
    def serial(self) -> bool:
        """Whether this pool is the inline (no-executor) fallback."""
        return self._executor is None

    # -- shared-memory registry -------------------------------------------------

    def publish(self, array) -> SharedArrayHandle:
        """Publish ``array`` in shared memory for this pool's workers.

        The handle is registered with the pool: kernels release it in
        their ``finally`` (:meth:`release`), and anything still alive
        when the pool closes — a build that raised between publish and
        release, say — is unlinked by :meth:`close`.  No ``/dev/shm``
        segment ever outlives the pool.
        """
        with self._lock:
            if self._closed:
                raise ConfigurationError(
                    "cannot publish to a closed WorkerPool"
                )
        handle = publish_shared_array(array)
        with self._lock:
            self.shm_published += 1
            self._shared.append(handle)
        return handle

    def release(self, handle: SharedArrayHandle) -> None:
        """Unlink a published segment and drop it from the registry."""
        with self._lock:
            try:
                self._shared.remove(handle)
            except ValueError:
                return  # already released (idempotent)
            self.shm_released += 1
        handle.release()

    # -- dispatch ---------------------------------------------------------------

    def submit(self, fn: Callable, *args, **kwargs):
        """Run ``fn(*args, **kwargs)``; returns an object with ``result()``.

        Serial pools execute the task immediately on the calling thread
        (exceptions are captured and re-raised from ``result()``, exactly
        like a real future, so callers never branch on the mode).
        Process pools additionally require ``fn`` (and its arguments) to
        be picklable; a worker-side exception re-raises from ``result()``
        with its original type.  Submitting to a closed pool raises
        :class:`~repro.errors.ConfigurationError` and counts under
        ``rejected``.
        """
        with self._lock:
            if self._closed:
                self.rejected += 1
                raise ConfigurationError("cannot submit to a closed WorkerPool")
            self.submitted += 1
        if self._executor is None:
            try:
                value = fn(*args, **kwargs)
            except BaseException as exc:  # re-raised at result(), like a future
                future = _SerialFuture(exc=exc)
            else:
                future = _SerialFuture(value=value)
            with self._lock:
                self.completed += 1
            return future
        future = self._executor.submit(fn, *args, **kwargs)
        future.add_done_callback(self._on_done)
        return future

    def _on_done(self, _future) -> None:
        with self._lock:
            self.completed += 1

    def map(self, fn: Callable, items: Iterable) -> list:
        """``[fn(item) for item in items]`` with pool-parallel execution.

        Results come back **in item order** regardless of completion
        order — the property every parallel kernel's bit-identity rests
        on (reductions downstream of the pool see the serial sequence).
        The first exception, in item order, propagates after all tasks
        were dispatched.
        """
        futures = [self.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Refuse new work, join the workers, unlink leftover shared
        memory (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        # Guaranteed shared-memory cleanup: anything a kernel published
        # but never released (e.g. it raised mid-build) dies here.
        while True:
            with self._lock:
                if not self._shared:
                    break
                handle = self._shared.pop()
                self.shm_released += 1
            handle.release()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reporting --------------------------------------------------------------

    def stats(self) -> dict:
        """Backend, worker counts, task counters, shared-memory counters."""
        with self._lock:
            return {
                "backend": self.backend,
                "workers": self.workers,
                "requested": self.requested,
                "serial": self.serial,
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "shm_published": self.shm_published,
                "shm_released": self.shm_released,
                "shm_active": len(self._shared),
            }


def as_pool(
    workers: "int | WorkerPool | None",
    name: str = "repro",
    backend: str | None = None,
) -> tuple[WorkerPool, bool]:
    """Normalize a ``workers`` argument into ``(pool, owned)``.

    Kernels accept either a worker count (they build and own a transient
    pool) or an existing :class:`WorkerPool` (shared, caller-owned — e.g.
    the benches, which inspect its counters afterwards).  ``owned`` tells
    the caller whether it must :meth:`~WorkerPool.close` the pool.  An
    existing pool carries its own backend; ``backend`` applies only when
    a pool is built here.
    """
    if isinstance(workers, WorkerPool):
        return workers, False
    return WorkerPool(workers, name=name, backend=backend), True


__all__: Sequence[str] = (
    "BLAS_ENV_VARS",
    "POOL_BACKENDS",
    "POOL_BACKEND_ENV",
    "WORKERS_ENV",
    "SharedArrayHandle",
    "WorkerPool",
    "as_pool",
    "attach_shared_array",
    "pool_worker_probe",
    "publish_shared_array",
    "require_thread_backend",
    "resolve_pool_backend",
    "resolve_workers",
)
