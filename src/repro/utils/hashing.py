"""Stable (process-independent) seed derivation.

Python's builtin ``hash`` is salted per process for strings, so it must never
feed a reproducible RNG.  :func:`stable_seed` derives a 63-bit seed from any
mix of strings/ints via BLAKE2, giving identical streams across runs and
machines.
"""

from __future__ import annotations

import hashlib


def stable_seed(*parts: str | int) -> int:
    """Deterministic 63-bit seed from the given parts."""
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        token = f"{type(part).__name__}:{part}"
        h.update(token.encode("utf-8"))
        h.update(b"\x00")
    return int.from_bytes(h.digest(), "big") >> 1
