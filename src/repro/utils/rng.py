"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes both into a
``Generator`` and :func:`spawn` derives independent child generators so that
subsystems (dataset generation, network init, mini-batch sampling, ...) do not
perturb each other's streams when one of them changes.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def as_generator(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a fresh nondeterministic generator; an ``int`` produces a
    deterministic one; an existing ``Generator`` is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


class RngMixin:
    """Mixin giving a class a lazily created, seed-controlled ``self.rng``."""

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self._rng = as_generator(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The component's private random generator."""
        return self._rng
