"""Deterministic fault injection for the resilience layer.

Production failure paths are untestable unless failures can be produced on
demand, identically on every run.  :class:`FaultInjector` is that switch: a
registry of named **injection points** (``"store.read"``, ``"store.write"``,
``"shard.search"``, ``"encode.forward"``, ...) that fault-aware components
consult via :meth:`FaultInjector.check` at the top of the operation the
point names.  A disarmed injector — the default everywhere — is a no-op, so
production paths pay one attribute test per operation and nothing else.

Armed, the injector evaluates its **rules**.  Each rule targets one point,
optionally filtered by call context (e.g. ``shard=2`` to kill a single
shard), and fires on a deterministic schedule:

- ``nth=N`` — fail the Nth matching call (1-based), once;
- ``rate=p`` — fail each matching call with probability ``p``, drawn from a
  per-rule generator seeded off the injector seed (the same schedule on
  every run);
- ``times=K`` — cap the total number of injected failures (``None`` =
  unlimited; the default for ``rate``/bare rules).

A bare rule (no ``nth``/``rate``) fires on every matching call until its
``times`` budget runs out — that is how a permanently dead shard is
modeled.  Fired rules raise :class:`~repro.errors.TransientError` unless
the rule carries another exception factory.

The injector counts every consulted call and every injected failure per
point (armed only), so tests and the fault-scale bench can assert exactly
how many faults the schedule delivered.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable

import numpy as np

from repro.errors import ConfigurationError, TransientError


class FaultRule:
    """One scheduled failure at one injection point.  Built by
    :meth:`FaultInjector.rule`; mutate nothing directly."""

    __slots__ = ("point", "exc", "match", "nth", "rate", "times",
                 "calls", "fired", "_rng")

    def __init__(
        self,
        point: str,
        exc: Callable[[str], BaseException],
        match: dict | None,
        nth: int | None,
        rate: float | None,
        times: int | None,
        rng: np.random.Generator | None,
    ) -> None:
        self.point = point
        self.exc = exc
        self.match = dict(match or {})
        self.nth = nth
        self.rate = rate
        self.times = times
        self.calls = 0
        self.fired = 0
        self._rng = rng

    def matches(self, context: dict) -> bool:
        return all(context.get(k) == v for k, v in self.match.items())

    def should_fire(self) -> bool:
        """Advance this rule's schedule by one matching call."""
        self.calls += 1
        if self.times is not None and self.fired >= self.times:
            return False
        if self.nth is not None:
            fire = self.calls == self.nth
        elif self.rate is not None:
            assert self._rng is not None
            fire = bool(self._rng.random() < self.rate)
        else:
            fire = True
        if fire:
            self.fired += 1
        return fire


class FaultInjector:
    """Named, seeded, armable fault schedule shared across components.

    One injector instance is threaded through every fault-aware component
    of a service (store, shards, batcher), so a single schedule can model a
    correlated outage.  ``arm()`` activates the rules; ``disarm()`` returns
    every injection point to a no-op, leaving counters intact so recovery
    can be asserted afterwards.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.armed = False
        self._rules: list[FaultRule] = []
        #: Calls consulted / failures injected per point, counted while armed.
        self.calls: Counter[str] = Counter()
        self.injected: Counter[str] = Counter()

    def rule(
        self,
        point: str,
        *,
        exc: Callable[[str], BaseException] = TransientError,
        match: dict | None = None,
        nth: int | None = None,
        rate: float | None = None,
        times: int | None = None,
    ) -> FaultRule:
        """Register one failure schedule at ``point``; returns the rule."""
        if not point:
            raise ConfigurationError("injection point name must be non-empty")
        if nth is not None and rate is not None:
            raise ConfigurationError("a rule takes nth= or rate=, not both")
        if nth is not None and nth < 1:
            raise ConfigurationError(f"nth is 1-based, got {nth}")
        if rate is not None and not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        if times is not None and times < 0:
            raise ConfigurationError(f"times must be >= 0, got {times}")
        rng = None
        if rate is not None:
            # Each rule draws from its own stream, decorrelated by index, so
            # adding a rule never perturbs the schedule of existing ones.
            rng = np.random.default_rng((self.seed, len(self._rules)))
        rule = FaultRule(point, exc, match, nth, rate,
                         times if nth is None else (times or 1), rng)
        self._rules.append(rule)
        return rule

    def arm(self) -> "FaultInjector":
        self.armed = True
        return self

    def disarm(self) -> "FaultInjector":
        self.armed = False
        return self

    def clear(self) -> None:
        """Drop every rule and counter (stays armed/disarmed as it was)."""
        self._rules.clear()
        self.calls.clear()
        self.injected.clear()

    def check(self, point: str, **context) -> None:
        """Consult the schedule at ``point``; raises when a rule fires.

        Components call this at the top of the guarded operation, passing
        whatever context their rules might filter on (``shard=si``,
        ``key=...``).  Disarmed, this is a no-op.
        """
        if not self.armed:
            return
        self.calls[point] += 1
        for rule in self._rules:
            if rule.point != point or not rule.matches(context):
                continue
            if rule.should_fire():
                self.injected[point] += 1
                raise rule.exc(
                    f"injected fault at {point}"
                    + (f" {context}" if context else "")
                )

    def stats(self) -> dict:
        """Per-point consult/injection counters plus per-rule fire counts."""
        return {
            "armed": self.armed,
            "calls": dict(self.calls),
            "injected": dict(self.injected),
            "rules": [
                {
                    "point": rule.point,
                    "match": dict(rule.match),
                    "calls": rule.calls,
                    "fired": rule.fired,
                }
                for rule in self._rules
            ],
        }


#: Shared always-disarmed injector: the default ``faults=`` everywhere.
#: Arming this instance is a bug (it would couple unrelated components);
#: build a dedicated injector instead.
NULL_INJECTOR = FaultInjector()
