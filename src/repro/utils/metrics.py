"""Fixed-bucket latency histograms for the serving layer.

Online percentile reporting (p50/p95/p99 in ``HashingService.stats()`` and
per-endpoint in the HTTP front end) must be cheap on the hot path, bounded
in memory no matter how many requests flow through, and mergeable across
sources (per-endpoint histograms roll up into one service view).  A
:class:`LatencyHistogram` is the standard answer: a fixed geometric bucket
ladder counts observations; a percentile resolves to the **upper bound of
the bucket holding that rank**, so the report is deterministic for a given
sequence of observations — no sampling, no reservoir, no run-to-run
jitter — and conservative (a reported p99 is never below the true p99).

The default ladder spans 10 microseconds to ~3 minutes with two buckets
per octave, tight enough that a bound is within ~41% of the true value;
callers with a narrower regime can pass their own ``bounds``.  Values
beyond the last bound land in an overflow bucket whose percentile reports
the exact observed maximum.

Every histogram is thread-safe (one lock around the counter array) —
the HTTP layer records from concurrent handler threads — and carries an
injectable ``clock`` so :meth:`LatencyHistogram.time` blocks are
deterministic under test.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager

from repro.errors import ConfigurationError


def geometric_bounds(
    start: float = 1e-5, factor: float = 2.0 ** 0.5, count: int = 48
) -> tuple[float, ...]:
    """A geometric bucket ladder: ``start * factor**i`` for i < count."""
    if start <= 0:
        raise ConfigurationError(f"start must be positive: {start}")
    if factor <= 1.0:
        raise ConfigurationError(f"factor must be > 1: {factor}")
    if count < 1:
        raise ConfigurationError(f"count must be >= 1: {count}")
    return tuple(start * factor ** i for i in range(count))


#: Default ladder: 10 us .. ~166 s, two buckets per octave.
DEFAULT_BOUNDS = geometric_bounds()


class LatencyHistogram:
    """Bounded-memory latency distribution with deterministic percentiles.

    Parameters
    ----------
    bounds:
        Strictly increasing positive bucket upper bounds, in seconds
        (default :data:`DEFAULT_BOUNDS`).  An observation lands in the
        first bucket whose bound is >= the value; values beyond the last
        bound land in the overflow bucket.
    clock:
        Monotonic time source for :meth:`time`, injectable for
        deterministic tests.
    """

    def __init__(
        self,
        bounds: Sequence[float] | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        bounds = tuple(DEFAULT_BOUNDS if bounds is None else bounds)
        if not bounds:
            raise ConfigurationError("bounds must not be empty")
        if bounds[0] <= 0 or any(
            b <= a for a, b in zip(bounds, bounds[1:])
        ):
            raise ConfigurationError(
                "bounds must be positive and strictly increasing"
            )
        self.bounds = bounds
        self._clock = clock
        self._lock = threading.Lock()
        # One extra slot: the overflow bucket past the last bound.
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    # -- recording --------------------------------------------------------------

    def record(self, seconds: float) -> None:
        """Count one observation (negative values clamp to 0)."""
        seconds = max(0.0, float(seconds))
        index = self._bucket_index(seconds)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    def _bucket_index(self, seconds: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= seconds (overflow slot when none)
            mid = (lo + hi) // 2
            if self.bounds[mid] >= seconds:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @contextmanager
    def time(self) -> Iterator[None]:
        """Record the wall-clock duration of the guarded block."""
        start = self._clock()
        try:
            yield
        finally:
            self.record(self._clock() - start)

    # -- reading ----------------------------------------------------------------

    @property
    def count(self) -> int:
        """Total observations recorded."""
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        """Arithmetic mean of the recorded values (0.0 when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest value recorded (exact, 0.0 when empty)."""
        with self._lock:
            return self._max

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the ``p``-th percentile rank.

        ``p`` is in [0, 100].  Deterministic and conservative: the true
        percentile is never above the returned value (the overflow bucket
        reports the exact observed maximum).  Returns 0.0 when empty.
        """
        if not 0.0 <= p <= 100.0:
            raise ConfigurationError(f"percentile must be in [0, 100]: {p}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = max(1, -(-int(p * self._count) // 100))  # ceil(p*n/100)
            seen = 0
            for index, bucket in enumerate(self._counts):
                seen += bucket
                if seen >= rank:
                    if index == len(self.bounds):  # overflow
                        return self._max
                    return self.bounds[index]
            return self._max  # unreachable: seen == count >= rank

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other``'s observations into this histogram (in place).

        Requires identical bucket bounds; returns ``self`` for chaining.
        """
        if other.bounds != self.bounds:
            raise ConfigurationError(
                "cannot merge histograms with different bucket bounds"
            )
        if other is self:
            return self
        with other._lock:
            counts = list(other._counts)
            count, total, peak = other._count, other._sum, other._max
        with self._lock:
            for index, bucket in enumerate(counts):
                self._counts[index] += bucket
            self._count += count
            self._sum += total
            if peak > self._max:
                self._max = peak
        return self

    def snapshot(self) -> dict:
        """JSON-able summary: count/mean/max plus p50/p95/p99 in seconds."""
        return {
            "count": self.count,
            "mean_s": self.mean,
            "max_s": self.max,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
        }
