"""Resilience primitives: bounded retries and circuit breakers.

:class:`RetryPolicy` re-runs an operation that raised a *transient* error —
bounded attempts, exponential backoff, deterministic jitter — with the
clock and sleep injectable so tests and benches never actually wait.
:class:`CircuitBreaker` guards a dependency that keeps failing: after
``failure_threshold`` consecutive failures it *opens* (callers skip the
dependency instead of paying the failure latency), after
``reset_timeout_s`` it lets one probe through (*half-open*), and a probe
success closes it again.

Both are deliberately synchronous and allocation-free on the happy path:
the serving layer wraps them around store I/O and shard fan-outs, which
are per-artifact / per-batch operations, not per-row ones.
"""

from __future__ import annotations

import time
from collections.abc import Callable

import numpy as np

from repro.errors import ConfigurationError, TransientError

#: Exception types retried by default: injected/declared transients plus
#: the OS-level errors a flaky disk or network filesystem produces.
DEFAULT_RETRY_ON: tuple[type[BaseException], ...] = (TransientError, OSError)


class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (1 = no retry).
    base_delay_s / multiplier / max_delay_s:
        Backoff before attempt ``i`` (2-based) is
        ``min(base_delay_s * multiplier**(i-2), max_delay_s)``, scaled by
        the jitter factor.
    jitter:
        Fractional jitter amplitude: each delay is multiplied by a value
        in ``[1-jitter, 1+jitter]`` drawn from a generator seeded with
        ``seed`` — the same schedule every run, but de-synchronized
        between policy instances with different seeds.
    retry_on:
        Exception types worth retrying; anything else propagates
        immediately (corruption is never transient).
    sleep / clock:
        Injectable so tests pass a no-op sleep; ``clock`` feeds the
        ``last_elapsed_s`` diagnostic.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay_s: float = 0.01,
        multiplier: float = 2.0,
        max_delay_s: float = 1.0,
        jitter: float = 0.1,
        seed: int = 0,
        retry_on: tuple[type[BaseException], ...] = DEFAULT_RETRY_ON,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1: {max_attempts}"
            )
        if base_delay_s < 0 or max_delay_s < 0:
            raise ConfigurationError("delays must be >= 0")
        if multiplier < 1.0:
            raise ConfigurationError(f"multiplier must be >= 1: {multiplier}")
        if not 0.0 <= jitter < 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1): {jitter}")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self.retry_on = retry_on
        self._sleep = sleep
        self._clock = clock
        self._rng = np.random.default_rng(seed)
        #: Cumulative number of *re*-tries performed (attempt 1 is free).
        self.retries = 0
        #: Operations that still failed after the final attempt.
        self.exhausted = 0
        self.last_elapsed_s = 0.0

    def delay_s(self, attempt: int) -> float:
        """Backoff before ``attempt`` (2-based); advances the jitter stream."""
        raw = min(
            self.base_delay_s * self.multiplier ** (attempt - 2),
            self.max_delay_s,
        )
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return raw

    def call(self, fn: Callable[[], object], label: str = "operation"):
        """Run ``fn`` under this policy; returns its value.

        Retries only ``retry_on`` exceptions; the final failure re-raises
        the last exception unchanged so callers still see the real type.
        """
        t0 = self._clock()
        try:
            for attempt in range(1, self.max_attempts + 1):
                try:
                    return fn()
                except self.retry_on:
                    if attempt == self.max_attempts:
                        self.exhausted += 1
                        raise
                    self.retries += 1
                    self._sleep(self.delay_s(attempt + 1))
        finally:
            self.last_elapsed_s = self._clock() - t0

    def stats(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "retries": self.retries,
            "exhausted": self.exhausted,
        }


#: Circuit states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with timed half-open probes.

    ``allow()`` gates each call: ``True`` in the closed state, ``False``
    while open, and ``True`` exactly once per ``reset_timeout_s`` window
    once open (the half-open probe).  The caller reports the outcome via
    ``record_success()`` / ``record_failure()``; a probe success closes the
    circuit, a probe failure re-opens it and restarts the timer.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1: {failure_threshold}"
            )
        if reset_timeout_s < 0:
            raise ConfigurationError(
                f"reset_timeout_s must be >= 0: {reset_timeout_s}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self.state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self.failures = 0
        self.successes = 0
        self.openings = 0

    def allow(self) -> bool:
        """Whether the guarded call may proceed right now."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            assert self._opened_at is not None
            if self._clock() - self._opened_at >= self.reset_timeout_s:
                self.state = HALF_OPEN
                return True
            return False
        # Half-open: one probe is already in flight this window; further
        # callers keep failing fast until its outcome is recorded.
        return False

    def record_success(self) -> None:
        self.successes += 1
        self._consecutive_failures = 0
        if self.state != CLOSED:
            self.state = CLOSED
            self._opened_at = None

    def record_failure(self) -> None:
        self.failures += 1
        self._consecutive_failures += 1
        if self.state == HALF_OPEN or (
            self.state == CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self.state = OPEN
            self._opened_at = self._clock()
            self.openings += 1

    def stats(self) -> dict:
        return {
            "state": self.state,
            "failures": self.failures,
            "successes": self.successes,
            "openings": self.openings,
            "consecutive_failures": self._consecutive_failures,
        }
