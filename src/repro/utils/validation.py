"""Argument validation helpers with error messages naming the offending value."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def check_array(
    x: object,
    name: str,
    ndim: int | None = None,
    shape: tuple[int | None, ...] | None = None,
    dtype: type | None = None,
) -> np.ndarray:
    """Coerce ``x`` to an ndarray and verify rank / shape constraints.

    ``shape`` entries of ``None`` match any extent.  Returns the coerced
    array so callers can use the validated value directly.
    """
    arr = np.asarray(x)
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    if ndim is not None and arr.ndim != ndim:
        raise ShapeError(f"{name} must be {ndim}-D, got shape {arr.shape}")
    if shape is not None:
        if arr.ndim != len(shape):
            raise ShapeError(
                f"{name} must have rank {len(shape)}, got shape {arr.shape}"
            )
        for axis, want in enumerate(shape):
            if want is not None and arr.shape[axis] != want:
                raise ShapeError(
                    f"{name} axis {axis} must have size {want}, got {arr.shape[axis]}"
                )
    return arr


def check_positive(value: float, name: str, strict: bool = True) -> float:
    """Require a (strictly) positive scalar."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return float(value)


def check_in_range(
    value: float, name: str, low: float, high: float, inclusive: bool = True
) -> float:
    """Require ``low <= value <= high`` (or strict, if ``inclusive=False``)."""
    ok = low <= value <= high if inclusive else low < value < high
    if not ok:
        bounds = f"[{low}, {high}]" if inclusive else f"({low}, {high})"
        raise ValueError(f"{name} must lie in {bounds}, got {value}")
    return float(value)


def check_binary_codes(codes: object, name: str = "codes") -> np.ndarray:
    """Validate a ±1 hash-code matrix of shape (n, k).

    The check is a single vectorized ``|x| == 1`` pass (NaN fails it too);
    this runs on every distance computation, so no sort/unique scan here.
    """
    arr = check_array(codes, name, ndim=2, dtype=np.float64)
    ok = np.abs(arr) == 1.0
    if not ok.all():
        bad = np.unique(arr[~ok][:64])[:8]
        raise ShapeError(f"{name} must contain only -1/+1, found values {bad}")
    return arr


def check_probability_rows(dist: object, name: str = "distributions") -> np.ndarray:
    """Validate a row-stochastic matrix (rows are probability distributions)."""
    arr = check_array(dist, name, ndim=2, dtype=np.float64)
    if np.any(arr < -1e-9):
        raise ShapeError(f"{name} has negative entries")
    sums = arr.sum(axis=1)
    if not np.allclose(sums, 1.0, atol=1e-6):
        raise ShapeError(f"{name} rows must sum to 1, got sums in "
                         f"[{sums.min():.6f}, {sums.max():.6f}]")
    return arr
