"""Plain-text table rendering for experiment reports.

The experiment runners print the same row/column layout as the paper's tables
so reproduced numbers can be compared side by side with the published ones.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_float(value: float, digits: int = 3) -> str:
    """Format a metric the way the paper prints MAP values (e.g. ``0.831``)."""
    return f"{value:.{digits}f}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return format_float(value)
    return str(value)
